type stats = {
  cycles : int;
  instructions : int;
  loads : int;
  stores : int;
  multiplies : int;
  branches : int;
  branches_taken : int;
}

type state = { regs : int array; memory : int array; stats : stats }

type error =
  | Out_of_fuel of int
  | Memory_fault of { pc : int; addr : int }
  | Pc_fault of int

let error_to_string = function
  | Out_of_fuel fuel -> Printf.sprintf "out of fuel after %d instructions" fuel
  | Memory_fault { pc; addr } ->
      Printf.sprintf "memory fault at pc=%d, address %d" pc addr
  | Pc_fault pc -> Printf.sprintf "control transfer outside program: %d" pc

let pp_stats ppf s =
  Format.fprintf ppf
    "cycles=%d insns=%d loads=%d stores=%d mults=%d branches=%d taken=%d"
    s.cycles s.instructions s.loads s.stores s.multiplies s.branches
    s.branches_taken

exception Fault of error

let run ?(costs = Isa.microblaze_costs) ?(fuel = 50_000_000) (p : Asm.program)
    ~memory =
  let memory = Array.copy memory in
  let mem_size = Array.length memory in
  let regs = Array.make Isa.reg_count 0 in
  let program = p.Asm.insns in
  let program_size = Array.length program in
  let cycles = ref 0 in
  let instructions = ref 0 in
  let loads = ref 0 in
  let stores = ref 0 in
  let multiplies = ref 0 in
  let branches = ref 0 in
  let branches_taken = ref 0 in
  let read r = regs.(r) in
  let write r v = if r <> 0 then regs.(r) <- v in
  let load pc addr =
    if addr < 0 || addr >= mem_size then raise (Fault (Memory_fault { pc; addr }))
    else memory.(addr)
  in
  let store pc addr v =
    if addr < 0 || addr >= mem_size then raise (Fault (Memory_fault { pc; addr }))
    else memory.(addr) <- v
  in
  let target pc t =
    if t < 0 || t >= program_size then raise (Fault (Pc_fault pc)) else t
  in
  let rec step pc remaining_fuel =
    if remaining_fuel <= 0 then raise (Fault (Out_of_fuel fuel))
    else if pc < 0 || pc >= program_size then raise (Fault (Pc_fault pc))
    else begin
      incr instructions;
      let insn = program.(pc) in
      let charge taken = cycles := !cycles + Isa.cost costs ~taken insn in
      let next = pc + 1 in
      let continue pc = step pc (remaining_fuel - 1) in
      match insn with
      | Isa.Li (rd, imm) ->
          charge false;
          write rd imm;
          continue next
      | Isa.Lw (rd, ra, off) ->
          charge false;
          incr loads;
          write rd (load pc (read ra + off));
          continue next
      | Isa.Sw (rs, ra, off) ->
          charge false;
          incr stores;
          store pc (read ra + off) (read rs);
          continue next
      | Isa.Add (rd, ra, rb) ->
          charge false;
          write rd (read ra + read rb);
          continue next
      | Isa.Addi (rd, ra, imm) ->
          charge false;
          write rd (read ra + imm);
          continue next
      | Isa.Sub (rd, ra, rb) ->
          charge false;
          write rd (read ra - read rb);
          continue next
      | Isa.Mul (rd, ra, rb) ->
          charge false;
          incr multiplies;
          write rd (read ra * read rb);
          continue next
      | Isa.Sll (rd, ra, sh) ->
          charge false;
          write rd (read ra lsl sh);
          continue next
      | Isa.Srl (rd, ra, sh) ->
          charge false;
          write rd (read ra lsr sh);
          continue next
      | Isa.Sra (rd, ra, sh) ->
          charge false;
          write rd (read ra asr sh);
          continue next
      | Isa.And (rd, ra, rb) ->
          charge false;
          write rd (read ra land read rb);
          continue next
      | Isa.Or (rd, ra, rb) ->
          charge false;
          write rd (read ra lor read rb);
          continue next
      | Isa.Xor (rd, ra, rb) ->
          charge false;
          write rd (read ra lxor read rb);
          continue next
      | Isa.Beq (ra, rb, t) -> branch pc (read ra = read rb) t remaining_fuel
      | Isa.Bne (ra, rb, t) -> branch pc (read ra <> read rb) t remaining_fuel
      | Isa.Blt (ra, rb, t) -> branch pc (read ra < read rb) t remaining_fuel
      | Isa.Bge (ra, rb, t) -> branch pc (read ra >= read rb) t remaining_fuel
      | Isa.Jmp t ->
          charge false;
          continue (target pc t)
      | Isa.Halt ->
          charge false;
          ()
    end
  and branch pc taken t remaining_fuel =
    incr branches;
    cycles := !cycles + Isa.cost costs ~taken (Isa.Beq (0, 0, t));
    if taken then begin
      incr branches_taken;
      step (target pc t) (remaining_fuel - 1)
    end
    else step (pc + 1) (remaining_fuel - 1)
  in
  match step 0 fuel with
  | () ->
      Ok
        {
          regs;
          memory;
          stats =
            {
              cycles = !cycles;
              instructions = !instructions;
              loads = !loads;
              stores = !stores;
              multiplies = !multiplies;
              branches = !branches;
              branches_taken = !branches_taken;
            };
        }
  | exception Fault e -> Error e
