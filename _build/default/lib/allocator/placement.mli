(** One-dimensional column placement for partially reconfigurable
    FPGAs.

    Virtex-II partial reconfiguration is column-granular: a hardware
    task occupies a contiguous range of configuration columns (the
    slot model of the authors' earlier run-time system, [7] in the
    paper).  A simple free-units check overestimates what fits — free
    capacity may be fragmented across non-contiguous gaps.  This module
    models the column map of one device and the classic placement
    policies, so the allocation manager can account for fragmentation.

    Columns are indexed [0 .. width-1]; a placement is a [(start,
    length)] extent.  The map never holds overlapping extents. *)

type t
(** Mutable column map of one device. *)

type extent = { start : int; length : int }

type policy =
  | First_fit  (** Leftmost gap that fits. *)
  | Best_fit  (** Smallest gap that fits (leftmost on ties). *)
  | Worst_fit  (** Largest gap (leftmost on ties) — keeps big gaps rare. *)

val all_policies : policy list
val policy_to_string : policy -> string

val create : width:int -> t
(** An empty map of [width] columns. @raise Invalid_argument when
    [width <= 0]. *)

val width : t -> int
val free_columns : t -> int
val used_columns : t -> int

val gaps : t -> extent list
(** Maximal free extents, left to right. *)

val largest_gap : t -> int
(** 0 when full. *)

val fragmentation : t -> float
(** [1 - largest_gap / free_columns]; 0 when free space is one block
    (or when nothing is free). *)

val place : t -> policy -> length:int -> (extent, string) result
(** Reserve a contiguous extent; fails when no gap is large enough
    (even if total free capacity would suffice — that is the point). *)

val place_at : t -> extent -> (unit, string) result
(** Reserve an explicit extent; fails on overlap or out-of-range. *)

val release : t -> extent -> (unit, string) result
(** Free a previously placed extent; fails if it is not currently
    placed exactly as given. *)

val extents : t -> extent list
(** Occupied extents, left to right. *)

val would_fit : t -> length:int -> bool
(** True iff some gap can host [length] columns. *)

val pp : Format.formatter -> t -> unit
(** Column map as a string, '#' used / '.' free. *)
