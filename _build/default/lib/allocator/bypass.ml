open Qos_core

type key = { app_id : string; type_id : int; fingerprint : int }

let fingerprint (r : Request.t) =
  let quantise w = Fxp.Q15.to_raw (Fxp.Q15.of_float w) in
  List.fold_left
    (fun acc (aid, v, w) ->
      let h = acc in
      let h = (h * 1000003) lxor aid in
      let h = (h * 1000003) lxor v in
      (h * 1000003) lxor quantise w)
    (r.type_id * 1000003)
    (Request.normalized_weights r)
  land max_int

let key_of ~app_id (r : Request.t) =
  { app_id; type_id = r.type_id; fingerprint = fingerprint r }

type t = {
  table : (key, int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create () =
  { table = Hashtbl.create 64; hits = 0; misses = 0; invalidations = 0 }

let lookup t key =
  match Hashtbl.find_opt t.table key with
  | Some impl_id ->
      t.hits <- t.hits + 1;
      Some impl_id
  | None ->
      t.misses <- t.misses + 1;
      None

let remember t key ~impl_id = Hashtbl.replace t.table key impl_id

let drop_matching t predicate =
  let victims =
    Hashtbl.fold
      (fun key impl_id acc -> if predicate key impl_id then key :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) victims;
  let n = List.length victims in
  t.invalidations <- t.invalidations + n;
  n

let invalidate_impl t ~type_id ~impl_id =
  drop_matching t (fun key stored ->
      key.type_id = type_id && stored = impl_id)

let invalidate_app t ~app_id =
  drop_matching t (fun key _ -> String.equal key.app_id app_id)

type stats = { hits : int; misses : int; tokens : int; invalidations : int }

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    tokens = Hashtbl.length t.table;
    invalidations = t.invalidations;
  }

let pp_stats ppf s =
  Format.fprintf ppf "hits=%d misses=%d tokens=%d invalidated=%d" s.hits
    s.misses s.tokens s.invalidations
