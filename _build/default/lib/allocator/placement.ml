type extent = { start : int; length : int }

(* Occupied extents kept sorted by start; invariants: lengths positive,
   extents within [0, width), no overlap. *)
type t = { width : int; mutable occupied : extent list }

type policy = First_fit | Best_fit | Worst_fit

let all_policies = [ First_fit; Best_fit; Worst_fit ]

let policy_to_string = function
  | First_fit -> "first-fit"
  | Best_fit -> "best-fit"
  | Worst_fit -> "worst-fit"

let create ~width =
  if width <= 0 then invalid_arg "Placement.create: width must be positive"
  else { width; occupied = [] }

let width t = t.width

let used_columns t =
  List.fold_left (fun acc e -> acc + e.length) 0 t.occupied

let free_columns t = t.width - used_columns t

let gaps t =
  let rec walk cursor = function
    | [] -> if cursor < t.width then [ { start = cursor; length = t.width - cursor } ] else []
    | e :: rest ->
        let before =
          if e.start > cursor then [ { start = cursor; length = e.start - cursor } ]
          else []
        in
        before @ walk (e.start + e.length) rest
  in
  walk 0 t.occupied

let largest_gap t =
  List.fold_left (fun acc g -> max acc g.length) 0 (gaps t)

let fragmentation t =
  let free = free_columns t in
  if free = 0 then 0.0
  else 1.0 -. (float_of_int (largest_gap t) /. float_of_int free)

let would_fit t ~length = length > 0 && largest_gap t >= length

let insert_sorted occupied e =
  let rec insert = function
    | [] -> [ e ]
    | head :: rest ->
        if e.start < head.start then e :: head :: rest
        else head :: insert rest
  in
  insert occupied

let overlaps a b =
  a.start < b.start + b.length && b.start < a.start + a.length

let place_at t e =
  if e.length <= 0 then Error "extent length must be positive"
  else if e.start < 0 || e.start + e.length > t.width then
    Error
      (Printf.sprintf "extent [%d, %d) outside the %d-column device" e.start
         (e.start + e.length) t.width)
  else if List.exists (overlaps e) t.occupied then
    Error
      (Printf.sprintf "extent [%d, %d) overlaps an existing placement" e.start
         (e.start + e.length))
  else begin
    t.occupied <- insert_sorted t.occupied e;
    Ok ()
  end

let choose_gap policy candidates =
  match candidates with
  | [] -> None
  | first :: rest -> (
      match policy with
      | First_fit -> Some first
      | Best_fit ->
          Some
            (List.fold_left
               (fun (acc : extent) g -> if g.length < acc.length then g else acc)
               first rest)
      | Worst_fit ->
          Some
            (List.fold_left
               (fun (acc : extent) g -> if g.length > acc.length then g else acc)
               first rest))

let place t policy ~length =
  if length <= 0 then Error "placement length must be positive"
  else
    let candidates = List.filter (fun g -> g.length >= length) (gaps t) in
    match choose_gap policy candidates with
    | None ->
        Error
          (Printf.sprintf
             "no contiguous gap of %d columns (free %d, largest gap %d)" length
             (free_columns t) (largest_gap t))
    | Some gap ->
        let e = { start = gap.start; length } in
        Result.map (fun () -> e) (place_at t e)

let release t e =
  if
    List.exists
      (fun x -> x.start = e.start && x.length = e.length)
      t.occupied
  then begin
    t.occupied <-
      List.filter (fun x -> not (x.start = e.start && x.length = e.length)) t.occupied;
    Ok ()
  end
  else
    Error
      (Printf.sprintf "extent [%d, %d) is not currently placed" e.start
         (e.start + e.length))

let extents t = t.occupied

let pp ppf t =
  let cells = Bytes.make t.width '.' in
  List.iter
    (fun e ->
      for i = e.start to e.start + e.length - 1 do
        Bytes.set cells i '#'
      done)
    t.occupied;
  Format.fprintf ppf "|%s| %d/%d used, frag %.2f" (Bytes.to_string cells)
    (used_columns t) t.width (fragmentation t)
