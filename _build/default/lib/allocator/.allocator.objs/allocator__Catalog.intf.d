lib/allocator/catalog.mli: Qos_core
