lib/allocator/device.ml: Format Option Printf Qos_core
