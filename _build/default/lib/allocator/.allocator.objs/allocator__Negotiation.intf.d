lib/allocator/negotiation.mli: Manager Qos_core
