lib/allocator/device.mli: Format Qos_core
