lib/allocator/placement.ml: Bytes Format List Printf Result
