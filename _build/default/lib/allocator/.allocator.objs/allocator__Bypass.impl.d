lib/allocator/bypass.ml: Format Fxp Hashtbl List Qos_core Request String
