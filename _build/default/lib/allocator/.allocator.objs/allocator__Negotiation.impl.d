lib/allocator/negotiation.ml: List Manager Option Qos_core Request
