lib/allocator/manager.mli: Bypass Catalog Device Format Placement Qos_core
