lib/allocator/bypass.mli: Format Qos_core
