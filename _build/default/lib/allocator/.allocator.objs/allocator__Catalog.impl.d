lib/allocator/catalog.ml: Casebase Ftype Impl List Map Printf Qos_core Target
