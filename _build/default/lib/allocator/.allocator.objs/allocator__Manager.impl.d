lib/allocator/manager.ml: Bypass Casebase Catalog Device Engine_float Format Hashtbl Impl Int List Option Placement Printf Qos_core Request Retrieval Rtlsim String Target
