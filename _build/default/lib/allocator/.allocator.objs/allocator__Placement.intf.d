lib/allocator/placement.mli: Format
