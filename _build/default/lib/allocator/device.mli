(** Execution resources of the multi-device system (Fig. 1): partially
    reconfigurable FPGAs, DSPs and general-purpose processors, each
    with a capacity budget in abstract resource units (slices for
    FPGAs, task slots for processors). *)

type t = private {
  device_id : string;
  target : Qos_core.Target.t;  (** Which implementation variants it runs. *)
  capacity : int;  (** Total resource units. *)
  reconfig_us_per_unit : float;
      (** Configuration-load time per unit — models partial-bitstream /
          code download latency. *)
  power_mw_per_unit : float;
      (** Active power drawn per occupied resource unit — feeds the
          energy accounting of the system simulation (the intro's
          "energy/power-efficiency" motivation). *)
}

val make :
  device_id:string ->
  target:Qos_core.Target.t ->
  capacity:int ->
  ?reconfig_us_per_unit:float ->
  ?power_mw_per_unit:float ->
  unit ->
  (t, string) result
(** Default reconfiguration cost: 2.0 us/unit for FPGAs (partial
    bitstream download), 0.05 us/unit otherwise (code load).  Default
    power density per target class: FPGA 0.9, DSP 120, GPP 40, ASIC 25,
    custom 50 mW/unit. *)

val default_system : unit -> t list
(** The Fig. 1 reference platform: a mid-size reconfigurable FPGA
    (600 units), a small FPGA (240 units), a DSP (3 slots), a GPP
    (8 slots) and one dedicated ASIC slot. *)

val pp : Format.formatter -> t -> unit
