open Qos_core

type requirement = { units : int; config_words : int }

module Key = struct
  type t = int * int

  let compare = compare
end

module Key_map = Map.Make (Key)

type t = requirement Key_map.t

let empty = Key_map.empty

let add ~type_id ~impl_id req t =
  if req.units <= 0 then
    Error
      (Printf.sprintf "impl (%d, %d): units must be positive" type_id impl_id)
  else if Key_map.mem (type_id, impl_id) t then
    Error (Printf.sprintf "duplicate catalog entry (%d, %d)" type_id impl_id)
  else Ok (Key_map.add (type_id, impl_id) req t)

let find t ~type_id ~impl_id = Key_map.find_opt (type_id, impl_id) t

(* Synthetic but deterministic footprints: the richer the variant (more
   attributes) and the more hardware-ish the target, the bigger the
   area and configuration data. *)
let default_requirement (impl : Impl.t) =
  let richness = 1 + Impl.attr_count impl in
  match impl.target with
  | Target.Fpga ->
      { units = 80 + (24 * richness); config_words = 4096 + (512 * richness) }
  | Target.Dsp -> { units = 1 + (richness / 8); config_words = 512 + (64 * richness) }
  | Target.Gpp -> { units = 1; config_words = 256 + (32 * richness) }
  | Target.Asic -> { units = 1; config_words = 16 }
  | Target.Custom _ -> { units = 1; config_words = 256 }

let of_casebase_default (cb : Casebase.t) =
  List.fold_left
    (fun acc (ft : Ftype.t) ->
      List.fold_left
        (fun acc (impl : Impl.t) ->
          Key_map.add (ft.id, impl.id) (default_requirement impl) acc)
        acc ft.impls)
    empty cb.ftypes

let cardinal = Key_map.cardinal
