(** Resource requirements of implementation variants.

    The case base describes {e QoS} attributes; how many resource units
    a variant occupies and how long its configuration data (bitstream /
    opcode, Sec. 3's "global function repository") takes to load is
    separate design-time metadata, kept here. *)

type requirement = {
  units : int;  (** Resource units on the matching device class. *)
  config_words : int;
      (** Size of the configuration data in 16-bit words (bitstream or
          opcode in the FLASH repository of Fig. 1). *)
}

type t

val empty : t

val add :
  type_id:int -> impl_id:int -> requirement -> t -> (t, string) result
(** [Error] on duplicate (type, impl) key or non-positive units. *)

val find : t -> type_id:int -> impl_id:int -> requirement option

val of_casebase_default : Qos_core.Casebase.t -> t
(** Deterministic synthetic footprints for every variant, sized by
    target class: FPGA variants take 80-320 units and large bitstreams,
    DSP 1-2 slots, GPP/ASIC 1 slot, scaled by attribute count (a proxy
    for functional richness).  Documented in DESIGN.md as a
    substitution for the paper's unpublished per-function data. *)

val cardinal : t -> int
