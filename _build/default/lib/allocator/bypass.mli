(** Bypass tokens (Sec. 3): once a function is allocated, repeated calls
    with the same QoS description skip the retrieval and only check
    that the variant is still resident.

    A token keys on (application, function type, request fingerprint)
    and remembers the selected variant.  Tokens are invalidated when
    the variant is unloaded. *)

type key = { app_id : string; type_id : int; fingerprint : int }

val fingerprint : Qos_core.Request.t -> int
(** Order-independent (constraints are stored sorted) hash of the
    constraint triples, with weights quantised to Q15 so requests that
    the hardware cannot distinguish share a token. *)

val key_of : app_id:string -> Qos_core.Request.t -> key

type t

val create : unit -> t

val lookup : t -> key -> int option
(** Remembered implementation ID; counts a hit or miss. *)

val remember : t -> key -> impl_id:int -> unit

val invalidate_impl : t -> type_id:int -> impl_id:int -> int
(** Drop every token pointing at the variant; returns how many were
    dropped. *)

val invalidate_app : t -> app_id:string -> int

type stats = { hits : int; misses : int; tokens : int; invalidations : int }

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
