(** The QoS negotiation loop of Sec. 3: when nothing acceptable or
    feasible exists, "the application has to repeat its request with
    rather relaxed constraints giving a chance to the third low
    performance implementation". *)

type round = {
  round_request : Qos_core.Request.t;
  round_result : (Manager.grant, Manager.refusal) result;
}

type outcome = {
  rounds : round list;  (** Chronological. *)
  final : (Manager.grant, Manager.refusal) result;  (** Of the last round. *)
}

val drop_weakest_constraint : Qos_core.Request.t -> Qos_core.Request.t option
(** Remove the constraint with the smallest weight (first such on
    ties); [None] when no constraint remains to drop. *)

val halve_weakest_weight : Qos_core.Request.t -> Qos_core.Request.t option
(** Gentler relaxation: halve the smallest weight instead of dropping
    the constraint; [None] when the request has no constraints. *)

val negotiate :
  ?max_rounds:int ->
  ?relax:(Qos_core.Request.t -> Qos_core.Request.t option) ->
  Manager.t ->
  app_id:string ->
  ?priority:int ->
  Qos_core.Request.t ->
  outcome
(** Ask, and on refusal relax and re-ask, up to [max_rounds] (default
    4) times.  Default relaxation: {!drop_weakest_constraint}. *)
