(** The function-allocation manager (Fig. 1, "Function-Allocation-
    Management" layer).

    For each application request it: checks the bypass-token cache;
    runs CBR retrieval for the n best variants above the acceptance
    threshold (Sec. 3); checks feasibility of each against current
    device load; optionally preempts strictly lower-priority tasks
    (the paper's previous work managed hardware tasks "with adaptive
    priorities"); and either grants a placement or returns the
    still-acceptable variants as an offer the application can react to
    (the QoS negotiation hook). *)

type policy = {
  threshold : float;
      (** Minimum acceptable global similarity (Sec. 3's rejection
          threshold). *)
  max_candidates : int;  (** How many n-best variants to consider. *)
  allow_preemption : bool;
  flash_read_us_per_word : float;
      (** Configuration-repository read cost, per 16-bit word. *)
  retrieval_clock_mhz : float option;
      (** When set, every non-bypass allocation also runs the
          cycle-accurate retrieval unit model and charges its latency at
          this clock — so bypass tokens save measurable microseconds.
          [None] (the default) models retrieval as free. *)
}

val default_policy : policy
(** threshold 0.5, 4 candidates, preemption on, 0.02 us/word, retrieval
    latency not modelled. *)

type task = private {
  task_id : int;
  app_id : string;
  type_id : int;
  impl_id : int;
  device_id : string;
  units : int;
  priority : int;  (** Higher preempts lower. *)
  score : float;  (** Similarity at grant time. *)
  extent : Placement.extent option;
      (** Column extent when the hosting device is fragmentation-
          modelled (see [placement_policy]); [None] otherwise. *)
}

type grant = {
  task : task;
  preempted : task list;
  setup_time_us : float;
      (** Placement cost (reconfiguration + repository read), plus the
          retrieval latency when modelled.  0 for bypass grants. *)
  retrieval_us : float;
      (** Retrieval-unit latency included in [setup_time_us]; 0 when
          not modelled or served via bypass. *)
  via_bypass : bool;
}

type offer = {
  offer_impl_id : int;
  offer_score : float;
  offer_target : Qos_core.Target.t;
}

type refusal =
  | Unknown_request of Qos_core.Retrieval.error
  | All_below_threshold of offer list
      (** Retrieval worked but nothing met the threshold; the scored
          variants are reported so the caller can decide to relax. *)
  | No_feasible of offer list
      (** Acceptable variants exist but none fits, even after allowed
          preemption; the offers support the negotiation loop. *)

type event =
  | Granted of grant
  | Refused of { app_id : string; type_id : int; refusal : refusal }
  | Preempted_task of task
  | Released_task of task

type t

val create :
  casebase:Qos_core.Casebase.t ->
  devices:Device.t list ->
  catalog:Catalog.t ->
  ?policy:policy ->
  ?placement_policy:Placement.policy ->
  unit ->
  t
(** With [placement_policy] set, every FPGA-class device is modelled as
    a 1D column map ([Placement]): admission requires a {e contiguous}
    gap, preemption evicts until one appears, and tasks carry their
    column extent.  Without it (the default) devices are simple
    capacity counters. *)

val allocate :
  t -> app_id:string -> ?priority:int -> Qos_core.Request.t
  -> (grant, refusal) result
(** Default priority 0. *)

val release : t -> task_id:int -> (task, string) result
(** Unloads the task and invalidates bypass tokens pointing at its
    variant if no other instance remains resident. *)

val release_app : t -> app_id:string -> int
(** Releases every task of the application; returns the count. *)

val tasks : t -> task list
val free_units : t -> device_id:string -> int option

val fragmentation : t -> device_id:string -> float option
(** Fragmentation of a column-mapped device ([Placement.fragmentation]);
    [None] for counter-managed devices. *)

val largest_gap : t -> device_id:string -> int option
(** Largest contiguous free extent of a column-mapped device. *)

val bypass_stats : t -> Bypass.stats

val drain_events : t -> event list
(** Events since the last drain, oldest first. *)

val refusal_to_string : refusal -> string
val pp_task : Format.formatter -> task -> unit
val pp_grant : Format.formatter -> grant -> unit
