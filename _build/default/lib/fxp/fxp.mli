(** 16-bit unsigned fixed-point arithmetic for the retrieval datapath.

    The paper's hardware (Sec. 4.2) processes all attribute values and
    similarities as 16-bit words.  Similarities live in [0, 1] and are
    represented in Q15 ([{!Q15.one} = 32768]).  The expensive division of
    equation (1) is replaced by a multiplication with the design-time
    precomputed reciprocal [(1 + dmax)^-1] (Sec. 4.1), which {!S.recip_succ}
    models.

    All operations saturate at the 16-bit raw bound instead of wrapping, the
    behaviour of the saturating datapath adders. *)

(** Width/format description of a fixed-point instantiation. *)
module type Format = sig
  val fractional_bits : int
  (** Number of fractional bits; must be in [0, 15]. *)
end

(** Operations of one fixed-point format. *)
module type S = sig
  type t = private int
  (** A raw 16-bit unsigned fixed-point value in [0, 65535]. *)

  val fractional_bits : int

  val zero : t

  val one : t
  (** [2 ^ fractional_bits]. *)

  val half : t

  val max_value : t
  (** Largest representable value, raw 65535. *)

  val ulp : float
  (** Magnitude of one least-significant bit, [2. ** -fractional_bits]. *)

  val of_raw : int -> t option
  (** [of_raw r] is [Some] iff [r] is within [0, 65535]. *)

  val of_raw_exn : int -> t
  (** @raise Invalid_argument when out of range. *)

  val to_raw : t -> int

  val of_float : float -> t
  (** Round to nearest; clamps into the representable range (negative
      inputs clamp to {!zero}). *)

  val to_float : t -> float

  val add : t -> t -> t
  (** Saturating addition. *)

  val sub : t -> t -> t
  (** Monus: [sub a b] is [zero] when [b >= a]. *)

  val mul : t -> t -> t
  (** Fixed-point product, rounded to nearest, saturating. *)

  val mul_int : t -> int -> t
  (** [mul_int x n] scales [x] by the non-negative integer [n],
      saturating.  Models the [|diff| * (1 + dmax)^-1] multiplier.
      @raise Invalid_argument when [n < 0]. *)

  val div : t -> t -> t
  (** Fixed-point division, rounded to nearest, saturating.  The hardware
      unit deliberately has no divider; this exists for golden-model
      cross-checks only.
      @raise Division_by_zero when the divisor is {!zero}. *)

  val recip_succ : int -> t
  (** [recip_succ n] is [1 / (1 + n)] rounded to nearest — the design-time
      "maxrange-1" supplemental-table entry for an attribute whose maximum
      distance is [n].  @raise Invalid_argument when [n < 0]. *)

  val complement_to_one : t -> t
  (** [complement_to_one x] is [one - x], clamped at {!zero} when [x > one].
      Implements the [1 - d/(1+dmax)] step of equation (1). *)

  val compare : t -> t -> int

  val equal : t -> t -> bool

  val min : t -> t -> t

  val max : t -> t -> t

  val abs_diff_int : int -> int -> int
  (** Manhattan distance of two raw integer attribute values — the ABS
      unit of the Fig. 7 datapath. *)

  val pp : Format.formatter -> t -> unit
  (** Prints the decimal value followed by the raw word, e.g. "0.8919 (29224)". *)
end

module Make (F : Format) : S

(** Q15: 1 sign-free integer bit, 15 fractional bits; [one] = 32768.
    The format used by the retrieval datapath for similarities and
    weights. *)
module Q15 : S

(** Q8: 8 integer bits, 8 fractional bits.  Used by resource/latency
    models where values exceed 2.0. *)
module Q8 : S
