module type Format = sig
  val fractional_bits : int
end

module type S = sig
  type t = private int

  val fractional_bits : int
  val zero : t
  val one : t
  val half : t
  val max_value : t
  val ulp : float
  val of_raw : int -> t option
  val of_raw_exn : int -> t
  val to_raw : t -> int
  val of_float : float -> t
  val to_float : t -> float
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val mul_int : t -> int -> t
  val div : t -> t -> t
  val recip_succ : int -> t
  val complement_to_one : t -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val min : t -> t -> t
  val max : t -> t -> t
  val abs_diff_int : int -> int -> int
  val pp : Format.formatter -> t -> unit
end

let raw_bound = 65535

module Make (F : Format) : S = struct
  type t = int

  let () =
    if F.fractional_bits < 0 || F.fractional_bits > 15 then
      invalid_arg "Fxp.Make: fractional_bits must be within [0, 15]"

  let fractional_bits = F.fractional_bits
  let zero = 0
  let one = 1 lsl fractional_bits
  let half = one / 2
  let max_value = raw_bound
  let ulp = 1.0 /. float_of_int one
  let saturate r = if r > raw_bound then raw_bound else if r < 0 then 0 else r
  let of_raw r = if r < 0 || r > raw_bound then None else Some r

  let of_raw_exn r =
    match of_raw r with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Fxp.of_raw_exn: %d out of range" r)

  let to_raw t = t

  let of_float f =
    if Float.is_nan f then invalid_arg "Fxp.of_float: nan"
    else saturate (int_of_float (Float.round (f *. float_of_int one)))

  let to_float t = float_of_int t /. float_of_int one
  let add a b = saturate (a + b)
  let sub a b = if b >= a then 0 else a - b

  (* Round-to-nearest product: add half an output LSB before shifting. *)
  let mul a b = saturate ((a * b + half) lsr fractional_bits)

  let mul_int x n =
    if n < 0 then invalid_arg "Fxp.mul_int: negative scale" else saturate (x * n)

  let div a b =
    if b = 0 then raise Division_by_zero
    else saturate (((a lsl fractional_bits) + (b / 2)) / b)

  let recip_succ n =
    if n < 0 then invalid_arg "Fxp.recip_succ: negative distance bound"
    else
      let d = n + 1 in
      (* one/d rounded to nearest; d >= 1 so no saturation possible. *)
      (one + (d / 2)) / d

  let complement_to_one x = if x >= one then 0 else one - x
  let compare = Int.compare
  let equal = Int.equal
  let min = Stdlib.min
  let max = Stdlib.max
  let abs_diff_int a b = abs (a - b)
  let pp ppf t = Format.fprintf ppf "%.4f (%d)" (to_float t) t
end

module Q15 = Make (struct
  let fractional_bits = 15
end)

module Q8 = Make (struct
  let fractional_bits = 8
end)
