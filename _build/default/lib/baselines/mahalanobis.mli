(** Mahalanobis-distance retrieval — the statistically grounded but
    computationally heavy alternative the paper names and rejects in
    Sec. 2.2 ("very effective concerning the results but the
    computational efforts would be too large").

    Implementation vectors are embedded in the schema's attribute space
    (missing attributes take the midpoint of their design bounds), the
    covariance matrix of all variants of the requested type is computed
    and (ridge-regularised) inverted once per case base, and variants
    are ranked by ascending Mahalanobis distance to the request vector.

    The floating-point operation counts let the benchmarks quantify the
    "too large" claim against the CBR datapath's handful of 16-bit
    ops. *)

type model
(** Prepared (inverted-covariance) model for one function type. *)

type flops = {
  prepare_flops : int;  (** Covariance + inversion, paid once. *)
  per_query_flops : int;  (** Distance evaluation for one variant. *)
}

val prepare :
  ?ridge:float ->
  Qos_core.Casebase.t ->
  type_id:int ->
  (model, string) result
(** [ridge] (default 1e-6) is added to the covariance diagonal so
    degenerate attribute sets stay invertible. *)

val flops : model -> flops

type ranked = { impl : Qos_core.Impl.t; distance : float; score : float }
(** [score = 1 / (1 + distance)], a similarity-like value in (0, 1]. *)

val rank : model -> Qos_core.Request.t -> ranked list
(** Ascending distance; ties keep case-base order.  Request attributes
    absent from the schema are ignored; schema attributes absent from
    the request take the request-side midpoint (no preference). *)

val best : model -> Qos_core.Request.t -> ranked option
