type t = { data : float array array; rows : int; cols : int }

let make ~rows ~cols fill =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.make: non-positive size"
  else { data = Array.make_matrix rows cols fill; rows; cols }

let identity n =
  let m = make ~rows:n ~cols:n 0.0 in
  for i = 0 to n - 1 do
    m.data.(i).(i) <- 1.0
  done;
  m

let of_rows = function
  | [] -> Error "empty matrix"
  | first :: _ as rows_list ->
      let cols = List.length first in
      if cols = 0 then Error "empty row"
      else if List.exists (fun r -> List.length r <> cols) rows_list then
        Error "ragged rows"
      else
        let rows = List.length rows_list in
        let data =
          Array.of_list (List.map Array.of_list rows_list)
        in
        Ok { data; rows; cols }

let rows m = m.rows
let cols m = m.cols
let get m i j = m.data.(i).(j)
let set m i j v = m.data.(i).(j) <- v

let copy m =
  { m with data = Array.map Array.copy m.data }

let transpose m =
  let r = make ~rows:m.cols ~cols:m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      r.data.(j).(i) <- m.data.(i).(j)
    done
  done;
  r

let mul a b =
  if a.cols <> b.rows then Error "Matrix.mul: dimension mismatch"
  else begin
    let r = make ~rows:a.rows ~cols:b.cols 0.0 in
    for i = 0 to a.rows - 1 do
      for j = 0 to b.cols - 1 do
        let acc = ref 0.0 in
        for k = 0 to a.cols - 1 do
          acc := !acc +. (a.data.(i).(k) *. b.data.(k).(j))
        done;
        r.data.(i).(j) <- !acc
      done
    done;
    Ok r
  end

let add_scaled_identity m lambda =
  if m.rows <> m.cols then invalid_arg "add_scaled_identity: non-square"
  else begin
    let r = copy m in
    for i = 0 to m.rows - 1 do
      r.data.(i).(i) <- r.data.(i).(i) +. lambda
    done;
    r
  end

let singular_epsilon = 1e-12

let inverse m =
  if m.rows <> m.cols then Error "Matrix.inverse: non-square"
  else begin
    let n = m.rows in
    let a = (copy m).data in
    let inv = (identity n).data in
    let swap arr i j =
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp
    in
    let rec eliminate col =
      if col = n then Ok ()
      else begin
        (* Partial pivoting. *)
        let pivot_row = ref col in
        for i = col + 1 to n - 1 do
          if Float.abs a.(i).(col) > Float.abs a.(!pivot_row).(col) then
            pivot_row := i
        done;
        if Float.abs a.(!pivot_row).(col) < singular_epsilon then
          Error "Matrix.inverse: singular matrix"
        else begin
          swap a col !pivot_row;
          swap inv col !pivot_row;
          let pivot = a.(col).(col) in
          for j = 0 to n - 1 do
            a.(col).(j) <- a.(col).(j) /. pivot;
            inv.(col).(j) <- inv.(col).(j) /. pivot
          done;
          for i = 0 to n - 1 do
            if i <> col then begin
              let factor = a.(i).(col) in
              if factor <> 0.0 then
                for j = 0 to n - 1 do
                  a.(i).(j) <- a.(i).(j) -. (factor *. a.(col).(j));
                  inv.(i).(j) <- inv.(i).(j) -. (factor *. inv.(col).(j))
                done
            end
          done;
          eliminate (col + 1)
        end
      end
    in
    Result.map (fun () -> { data = inv; rows = n; cols = n }) (eliminate 0)
  end

let covariance samples =
  match samples with
  | [] -> Error "Matrix.covariance: no samples"
  | first :: _ ->
      let dim = Array.length first in
      if dim = 0 then Error "Matrix.covariance: zero-dimensional samples"
      else if List.exists (fun s -> Array.length s <> dim) samples then
        Error "Matrix.covariance: inconsistent dimensions"
      else begin
        let n = float_of_int (List.length samples) in
        let mean = Array.make dim 0.0 in
        List.iter
          (fun s -> Array.iteri (fun i v -> mean.(i) <- mean.(i) +. v) s)
          samples;
        Array.iteri (fun i v -> mean.(i) <- v /. n) mean;
        let cov = make ~rows:dim ~cols:dim 0.0 in
        List.iter
          (fun s ->
            for i = 0 to dim - 1 do
              for j = 0 to dim - 1 do
                cov.data.(i).(j) <-
                  cov.data.(i).(j)
                  +. ((s.(i) -. mean.(i)) *. (s.(j) -. mean.(j)))
              done
            done)
          samples;
        for i = 0 to dim - 1 do
          for j = 0 to dim - 1 do
            cov.data.(i).(j) <- cov.data.(i).(j) /. n
          done
        done;
        Ok cov
      end

let quadratic_form m v =
  if m.rows <> m.cols || Array.length v <> m.rows then
    Error "Matrix.quadratic_form: dimension mismatch"
  else begin
    let n = m.rows in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        acc := !acc +. (v.(i) *. m.data.(i).(j) *. v.(j))
      done
    done;
    Ok !acc
  end

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then infinity
  else begin
    let worst = ref 0.0 in
    for i = 0 to a.rows - 1 do
      for j = 0 to a.cols - 1 do
        worst := Float.max !worst (Float.abs (a.data.(i).(j) -. b.data.(i).(j)))
      done
    done;
    !worst
  end

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      Format.fprintf ppf "%s%.4g" (if j > 0 then " " else "") m.data.(i).(j)
    done;
    Format.fprintf ppf "]@,"
  done;
  Format.fprintf ppf "@]"
