(** Naive allocation strategies used as comparison points.

    The paper's introduction motivates QoS-aware retrieval by
    contrasting it with embedded systems where "the location for
    execution is normally pre-defined at design time" — i.e. selection
    by fixed rule, ignoring the request's QoS needs.  These selectors
    make that contrast measurable: each picks a variant, and
    [Qos_core.Engine_float.score_impl] scores how well the pick matches
    the request. *)

val exact_match :
  Qos_core.Casebase.t -> Qos_core.Request.t -> Qos_core.Impl.t option
(** First variant whose stored value equals the requested value for
    {e every} constraint; [None] when nothing matches exactly (the
    brittleness this strategy is punished for). *)

val rule_based :
  ?priority:Qos_core.Target.t list ->
  Qos_core.Casebase.t ->
  Qos_core.Request.t ->
  Qos_core.Impl.t option
(** Design-time rule: pick the first variant of the most-preferred
    execution target, regardless of attributes.  Default priority:
    FPGA, DSP, ASIC, GPP. *)

val random_choice :
  Workload.Prng.t ->
  Qos_core.Casebase.t ->
  Qos_core.Request.t ->
  Qos_core.Impl.t option
(** Uniform choice among the type's variants. *)

val first_listed :
  Qos_core.Casebase.t -> Qos_core.Request.t -> Qos_core.Impl.t option
(** The first variant in case-base order. *)

val regret :
  Qos_core.Casebase.t -> Qos_core.Request.t -> Qos_core.Impl.t option
  -> float
(** Similarity gap between the CBR-optimal variant and the given pick:
    [best_score - pick_score]; a missing pick costs the full best
    score.  0 when the case base lacks the type. *)
