open Qos_core

type model = {
  schema : Attr.Schema.t;
  dims : Attr.id array;  (** Attribute IDs in vector order. *)
  impls : Impl.t list;
  inv_cov : Matrix.t;
  sample_count : int;
}

type flops = { prepare_flops : int; per_query_flops : int }

let midpoint (d : Attr.descriptor) =
  float_of_int (d.lower + d.upper) /. 2.0

(* Embed a variant in schema space; absent attributes sit at the bound
   midpoint so they neither attract nor repel. *)
let embed_impl schema dims impl =
  Array.map
    (fun aid ->
      match Impl.find_attr impl aid with
      | Some v -> float_of_int v
      | None -> (
          match Attr.Schema.find schema aid with
          | Some d -> midpoint d
          | None -> 0.0))
    dims

let embed_request schema dims (request : Request.t) =
  Array.map
    (fun aid ->
      match Request.find request aid with
      | Some c -> float_of_int c.Request.value
      | None -> (
          match Attr.Schema.find schema aid with
          | Some d -> midpoint d
          | None -> 0.0))
    dims

let prepare ?(ridge = 1e-6) (cb : Casebase.t) ~type_id =
  match Casebase.find_type cb type_id with
  | None -> Error (Printf.sprintf "type %d not in case base" type_id)
  | Some ft when ft.Ftype.impls = [] ->
      Error (Printf.sprintf "type %d has no implementations" type_id)
  | Some ft ->
      let dims =
        Array.of_list
          (List.map
             (fun (d : Attr.descriptor) -> d.id)
             (Attr.Schema.descriptors cb.schema))
      in
      if Array.length dims = 0 then Error "empty schema"
      else
        let samples =
          List.map (embed_impl cb.schema dims) ft.Ftype.impls
        in
        Result.bind (Matrix.covariance samples) (fun cov ->
            let regularised = Matrix.add_scaled_identity cov ridge in
            Result.map
              (fun inv_cov ->
                {
                  schema = cb.schema;
                  dims;
                  impls = ft.Ftype.impls;
                  inv_cov;
                  sample_count = List.length samples;
                })
              (Matrix.inverse regularised))

let flops model =
  let n = Array.length model.dims in
  let k = model.sample_count in
  {
    (* covariance: k * n^2 multiply-adds; Gauss-Jordan: ~2 n^3. *)
    prepare_flops = (2 * k * n * n) + (2 * n * n * n);
    (* (a-b)^T S^-1 (a-b): n subtractions + n^2 multiply-adds. *)
    per_query_flops = n + (2 * n * n);
  }

type ranked = { impl : Impl.t; distance : float; score : float }

let rank model (request : Request.t) =
  let rv = embed_request model.schema model.dims request in
  let score_impl impl =
    let iv = embed_impl model.schema model.dims impl in
    let diff = Array.mapi (fun i v -> v -. rv.(i)) iv in
    match Matrix.quadratic_form model.inv_cov diff with
    | Error _ -> { impl; distance = infinity; score = 0.0 }
    | Ok d2 ->
        let distance = sqrt (Float.max 0.0 d2) in
        { impl; distance; score = 1.0 /. (1.0 +. distance) }
  in
  List.stable_sort
    (fun a b -> Float.compare a.distance b.distance)
    (List.map score_impl model.impls)

let best model request =
  match rank model request with [] -> None | top :: _ -> Some top
