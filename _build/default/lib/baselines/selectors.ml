open Qos_core

let impls_of cb (request : Request.t) =
  match Casebase.find_type cb request.type_id with
  | None -> []
  | Some ft -> ft.Ftype.impls

let exact_match cb (request : Request.t) =
  let matches impl =
    List.for_all
      (fun (c : Request.constr) ->
        match Impl.find_attr impl c.attr with
        | Some v -> v = c.value
        | None -> false)
      request.constraints
  in
  List.find_opt matches (impls_of cb request)

let default_priority = Target.[ Fpga; Dsp; Asic; Gpp ]

let rule_based ?(priority = default_priority) cb request =
  let impls = impls_of cb request in
  let by_target target =
    List.find_opt (fun (i : Impl.t) -> Target.equal i.target target) impls
  in
  let rec first_of = function
    | [] -> (match impls with [] -> None | i :: _ -> Some i)
    | target :: rest -> (
        match by_target target with Some i -> Some i | None -> first_of rest)
  in
  first_of priority

let random_choice rng cb request =
  match impls_of cb request with
  | [] -> None
  | impls -> Some (Workload.Prng.choose rng impls)

let first_listed cb request =
  match impls_of cb request with [] -> None | i :: _ -> Some i

let regret cb request pick =
  match Engine_float.best cb request with
  | Error _ -> 0.0
  | Ok best -> (
      match pick with
      | None -> best.Retrieval.score
      | Some impl ->
          best.Retrieval.score -. Engine_float.score_impl cb.schema request impl)
