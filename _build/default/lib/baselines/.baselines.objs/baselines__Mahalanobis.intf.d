lib/baselines/mahalanobis.mli: Qos_core
