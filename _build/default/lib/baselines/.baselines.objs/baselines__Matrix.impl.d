lib/baselines/matrix.ml: Array Float Format List Result
