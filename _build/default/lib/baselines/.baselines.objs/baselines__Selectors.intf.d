lib/baselines/selectors.mli: Qos_core Workload
