lib/baselines/selectors.ml: Casebase Engine_float Ftype Impl List Qos_core Request Retrieval Target Workload
