lib/baselines/matrix.mli: Format
