lib/baselines/mahalanobis.ml: Array Attr Casebase Float Ftype Impl List Matrix Printf Qos_core Request Result
