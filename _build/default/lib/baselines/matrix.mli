(** Small dense float matrices — enough linear algebra for the
    Mahalanobis-distance baseline of Sec. 2.2 (covariance matrix,
    Gauss-Jordan inversion). *)

type t

val make : rows:int -> cols:int -> float -> t
val identity : int -> t
val of_rows : float list list -> (t, string) result
(** Fails on ragged or empty input. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t

val mul : t -> t -> (t, string) result
(** Fails on dimension mismatch. *)

val add_scaled_identity : t -> float -> t
(** [add_scaled_identity m lambda] is [m + lambda * I] (ridge
    regularisation); requires a square matrix. *)

val inverse : t -> (t, string) result
(** Gauss-Jordan with partial pivoting; fails on non-square or
    (numerically) singular input. *)

val covariance : float array list -> (t, string) result
(** Sample covariance of row vectors (denominator [n]); fails on empty
    input or inconsistent dimensions. *)

val quadratic_form : t -> float array -> (float, string) result
(** [quadratic_form m v] is [v^T m v]; fails on dimension mismatch. *)

val max_abs_diff : t -> t -> float
(** For approximate-equality tests; [infinity] on shape mismatch. *)

val pp : Format.formatter -> t -> unit
