type document = { casebase : Casebase.t option; requests : Request.t list }

type parse_error = { line : int; message : string }

let pp_parse_error ppf e =
  Format.fprintf ppf "line %d: %s" e.line e.message

(* --- Tokenizer -------------------------------------------------------- *)

(* A token is a bare word or a quoted string (quotes stripped). *)
let tokenize_line line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let rec skip_blank i tokens =
    if i >= n then Ok (List.rev tokens)
    else
      match line.[i] with
      | ' ' | '\t' | '\r' -> skip_blank (i + 1) tokens
      | '#' -> Ok (List.rev tokens)
      | '"' -> in_quote (i + 1) tokens
      | _ -> in_word i tokens
  and in_word i tokens =
    let rec stop j =
      if j >= n then j
      else
        match line.[j] with ' ' | '\t' | '\r' | '#' | '"' -> j | _ -> stop (j + 1)
    in
    let j = stop i in
    skip_blank j (String.sub line i (j - i) :: tokens)
  and in_quote i tokens =
    Buffer.clear buf;
    let rec scan j =
      if j >= n then Error "unterminated quoted string"
      else if line.[j] = '"' then (
        let s = Buffer.contents buf in
        skip_blank (j + 1) (s :: tokens))
      else (
        Buffer.add_char buf line.[j];
        scan (j + 1))
    in
    scan i
  in
  skip_blank 0 []

(* --- Parser ----------------------------------------------------------- *)

type impl_builder = {
  impl_id : int;
  target : Target.t;
  rev_attrs : (int * int) list;
}

type type_builder = {
  type_id : int;
  type_name : string;
  rev_impls : Impl.t list;
}

type request_builder = { req_type : int; rev_wants : (int * int * float) list }

type context =
  | Top
  | In_schema
  | In_type of type_builder
  | In_impl of type_builder * impl_builder
  | In_request of request_builder

type state = {
  cb_name : string option;
  rev_descriptors : Attr.descriptor list;
  rev_ftypes : Ftype.t list;
  rev_requests : Request.t list;
  context : context;
}

let initial =
  {
    cb_name = None;
    rev_descriptors = [];
    rev_ftypes = [];
    rev_requests = [];
    context = Top;
  }

let err line message = Error { line; message }

let int_token line what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> err line (Printf.sprintf "%s: expected integer, got %S" what s)

let float_token line what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> err line (Printf.sprintf "%s: expected number, got %S" what s)

let ( let* ) = Result.bind

(* Closing an open implementation folds it into its type builder. *)
let close_impl line tb ib =
  match
    Impl.make ~id:ib.impl_id ~target:ib.target (List.rev ib.rev_attrs)
  with
  | Ok impl -> Ok { tb with rev_impls = impl :: tb.rev_impls }
  | Error m -> err line m

let close_type line tb =
  match
    Ftype.make ~id:tb.type_id ~name:tb.type_name (List.rev tb.rev_impls)
  with
  | Ok ft -> Ok ft
  | Error m -> err line m

let close_request line rb =
  match Request.make ~type_id:rb.req_type (List.rev rb.rev_wants) with
  | Ok r -> Ok r
  | Error m -> err line m

(* Close whatever block is open, returning to Top context. *)
let close_context line state =
  match state.context with
  | Top | In_schema -> Ok { state with context = Top }
  | In_type tb ->
      let* ft = close_type line tb in
      Ok { state with rev_ftypes = ft :: state.rev_ftypes; context = Top }
  | In_impl (tb, ib) ->
      let* tb = close_impl line tb ib in
      let* ft = close_type line tb in
      Ok { state with rev_ftypes = ft :: state.rev_ftypes; context = Top }
  | In_request rb ->
      let* r = close_request line rb in
      Ok { state with rev_requests = r :: state.rev_requests; context = Top }

let step state line tokens =
  match tokens with
  | [] -> Ok state
  | "casebase" :: rest -> (
      match rest with
      | [ name ] -> (
          let* state = close_context line state in
          match state.cb_name with
          | Some _ -> err line "duplicate casebase declaration"
          | None -> Ok { state with cb_name = Some name })
      | _ -> err line "usage: casebase \"<name>\"")
  | [ "schema" ] ->
      let* state = close_context line state in
      Ok { state with context = In_schema }
  | "attr" :: rest -> (
      match (state.context, rest) with
      | In_schema, [ id; name; lower; upper ] ->
          let* id = int_token line "attr id" id in
          let* lower = int_token line "attr lower bound" lower in
          let* upper = int_token line "attr upper bound" upper in
          let* d =
            Result.map_error
              (fun m -> { line; message = m })
              (Attr.descriptor ~id ~name ~lower ~upper)
          in
          Ok { state with rev_descriptors = d :: state.rev_descriptors }
      | In_schema, _ -> err line "usage: attr <id> \"<name>\" <lower> <upper>"
      | (Top | In_type _ | In_impl _ | In_request _), _ ->
          err line "attr outside a schema block")
  | "type" :: rest -> (
      match rest with
      | [ id; name ] ->
          let* state = close_context line state in
          let* type_id = int_token line "type id" id in
          Ok
            {
              state with
              context = In_type { type_id; type_name = name; rev_impls = [] };
            }
      | _ -> err line "usage: type <id> \"<name>\"")
  | "impl" :: rest -> (
      let* tb =
        match state.context with
        | In_type tb -> Ok tb
        | In_impl (tb, ib) -> close_impl line tb ib
        | Top | In_schema | In_request _ ->
            err line "impl outside a type block"
      in
      match rest with
      | [ id; target ] ->
          let* impl_id = int_token line "impl id" id in
          let* target =
            Result.map_error
              (fun m -> { line; message = m })
              (Target.of_string target)
          in
          Ok
            {
              state with
              context = In_impl (tb, { impl_id; target; rev_attrs = [] });
            }
      | _ -> err line "usage: impl <id> <target>")
  | "set" :: rest -> (
      match (state.context, rest) with
      | In_impl (tb, ib), [ aid; v ] ->
          let* aid = int_token line "attribute id" aid in
          let* v = int_token line "attribute value" v in
          Ok
            {
              state with
              context = In_impl (tb, { ib with rev_attrs = (aid, v) :: ib.rev_attrs });
            }
      | In_impl _, _ -> err line "usage: set <attr-id> <value>"
      | (Top | In_schema | In_type _ | In_request _), _ ->
          err line "set outside an impl block")
  | "request" :: rest -> (
      match rest with
      | [ tid ] ->
          let* state = close_context line state in
          let* req_type = int_token line "request type id" tid in
          Ok { state with context = In_request { req_type; rev_wants = [] } }
      | _ -> err line "usage: request <type-id>")
  | "want" :: rest -> (
      match (state.context, rest) with
      | In_request rb, [ aid; v; w ] ->
          let* aid = int_token line "attribute id" aid in
          let* v = int_token line "attribute value" v in
          let* w = float_token line "weight" w in
          Ok
            {
              state with
              context =
                In_request { rb with rev_wants = (aid, v, w) :: rb.rev_wants };
            }
      | In_request _, _ -> err line "usage: want <attr-id> <value> <weight>"
      | (Top | In_schema | In_type _ | In_impl _), _ ->
          err line "want outside a request block")
  | keyword :: _ -> err line (Printf.sprintf "unknown keyword %S" keyword)

let parse_document text =
  let lines = String.split_on_char '\n' text in
  let* state, last_line =
    List.fold_left
      (fun acc raw ->
        let* state, lineno = acc in
        let lineno = lineno + 1 in
        match tokenize_line raw with
        | Error m -> err lineno m
        | Ok tokens ->
            let* state = step state lineno tokens in
            Ok (state, lineno))
      (Ok (initial, 0))
      lines
  in
  let* state = close_context (max last_line 1) state in
  let* casebase =
    match state.cb_name with
    | None ->
        if state.rev_descriptors = [] && state.rev_ftypes = [] then Ok None
        else err (max last_line 1) "schema/type data without a casebase header"
    | Some name ->
        let* schema =
          Result.map_error
            (fun m -> { line = max last_line 1; message = m })
            (Attr.Schema.of_list (List.rev state.rev_descriptors))
        in
        let* cb =
          Result.map_error
            (fun m -> { line = max last_line 1; message = m })
            (Casebase.make ~name ~schema (List.rev state.rev_ftypes))
        in
        Ok (Some cb)
  in
  Ok { casebase; requests = List.rev state.rev_requests }

let parse_casebase text =
  let* doc = parse_document text in
  match doc.casebase with
  | Some cb -> Ok cb
  | None -> err 1 "document contains no casebase"

let parse_request text =
  let* doc = parse_document text in
  match doc.requests with
  | [ r ] -> Ok r
  | [] -> err 1 "document contains no request"
  | _ -> err 1 "document contains more than one request"

(* --- Printer ---------------------------------------------------------- *)

let print_casebase (cb : Casebase.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "casebase %S\n" cb.name);
  Buffer.add_string buf "schema\n";
  List.iter
    (fun (d : Attr.descriptor) ->
      Buffer.add_string buf
        (Printf.sprintf "  attr %d %S %d %d\n" d.id d.name d.lower d.upper))
    (Attr.Schema.descriptors cb.schema);
  List.iter
    (fun (ft : Ftype.t) ->
      Buffer.add_string buf (Printf.sprintf "type %d %S\n" ft.id ft.name);
      List.iter
        (fun (impl : Impl.t) ->
          Buffer.add_string buf
            (Printf.sprintf "  impl %d %s\n" impl.id
               (Target.to_string impl.target));
          List.iter
            (fun (aid, v) ->
              Buffer.add_string buf (Printf.sprintf "    set %d %d\n" aid v))
            impl.attrs)
        ft.impls)
    cb.ftypes;
  Buffer.contents buf

let print_request (r : Request.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "request %d\n" r.type_id);
  List.iter
    (fun (c : Request.constr) ->
      Buffer.add_string buf
        (Printf.sprintf "  want %d %d %.17g\n" c.attr c.value c.weight))
    r.constraints;
  Buffer.contents buf

let print_document doc =
  let cb = Option.fold ~none:"" ~some:print_casebase doc.casebase in
  cb ^ String.concat "" (List.map print_request doc.requests)
