(** Execution targets an implementation variant can run on.

    The paper's system (Fig. 1) mixes partially reconfigurable FPGAs,
    DSPs, general-purpose processors and fixed-function ASICs. *)

type t =
  | Fpga  (** Run-time reconfigurable fabric slot. *)
  | Dsp  (** Digital signal processor. *)
  | Gpp  (** General-purpose (soft- or hard-core) processor. *)
  | Asic  (** Dedicated fixed-function hardware. *)
  | Custom of string  (** Forward-compatible escape hatch. *)

val all_builtin : t list
(** [Fpga; Dsp; Gpp; Asic], the targets named by the paper. *)

val to_string : t -> string
(** Lower-case keyword form used by the text format ("fpga", "dsp", ...). *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; unknown keywords become [Custom] only via
    the explicit "custom:<name>" spelling, otherwise [Error]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
