(** QoS attributes and the design-time attribute schema.

    Attributes are the typed ID/value pairs of Sec. 2.2: integer-valued
    (16-bit words in the hardware), identified by a globally unique type
    ID, with design-time value bounds from which the maximum distance
    [dmax] of equation (1) is derived.  The schema corresponds to the
    "attribute supplemental data" list of Fig. 4 (right): per attribute
    ID it stores lower/upper bounds and the precomputed reciprocal
    [(1 + dmax)^-1]. *)

type id = int
(** Attribute type ID; positive, fits a 16-bit word. *)

type value = int
(** Attribute value; non-negative, fits a 16-bit word.  Units are
    attribute-specific (kSamples/s, bits, enum code, mW, ...). *)

type descriptor = {
  id : id;
  name : string;  (** Human-readable label, e.g. "sample-rate". *)
  lower : value;  (** Design-global lower bound over the whole library. *)
  upper : value;  (** Design-global upper bound over the whole library. *)
}

val descriptor : id:id -> name:string -> lower:value -> upper:value
  -> (descriptor, string) result
(** Validates ID/value word ranges and [lower <= upper]. *)

val dmax : descriptor -> int
(** Maximum possible distance of two in-bounds values: [upper - lower]. *)

val max_word : int
(** 65535 — everything stored in the hardware lists must fit this. *)

val pp_descriptor : Format.formatter -> descriptor -> unit

(** The design-time schema: a set of descriptors keyed by attribute ID. *)
module Schema : sig
  type t

  val empty : t

  val add : descriptor -> t -> (t, string) result
  (** [Error] on duplicate ID. *)

  val of_list : descriptor list -> (t, string) result

  val find : t -> id -> descriptor option
  val mem : t -> id -> bool

  val dmax : t -> id -> int option
  (** Maximum distance for the given attribute ID, when known. *)

  val recip : t -> id -> Fxp.Q15.t option
  (** Q15 value of [(1 + dmax)^-1] — the "maxrange-1" supplemental
      entry that lets the datapath multiply instead of divide. *)

  val descriptors : t -> descriptor list
  (** In ascending ID order (the pre-sorted list invariant of Sec. 4.1). *)

  val cardinal : t -> int
  val union : t -> t -> (t, string) result
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
