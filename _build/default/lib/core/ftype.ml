type t = { id : int; name : string; impls : Impl.t list }

let rec check_unique = function
  | [] | [ _ ] -> Ok ()
  | (a : Impl.t) :: (b :: _ as rest) ->
      if a.Impl.id = b.Impl.id then
        Error (Printf.sprintf "duplicate implementation id %d" a.Impl.id)
      else check_unique rest

let make ~id ~name impls =
  if id <= 0 || id > Attr.max_word then
    Error (Printf.sprintf "function-type id %d outside (0, %d]" id Attr.max_word)
  else
    let sorted =
      List.sort (fun (a : Impl.t) (b : Impl.t) -> Int.compare a.id b.id) impls
    in
    Result.map (fun () -> { id; name; impls = sorted }) (check_unique sorted)

let find_impl t id = List.find_opt (fun (i : Impl.t) -> i.id = id) t.impls
let impl_count t = List.length t.impls

let equal a b =
  a.id = b.id && String.equal a.name b.name
  && List.equal Impl.equal a.impls b.impls

let pp ppf t =
  Format.fprintf ppf "@[<v 2>type %d %S:@ %a@]" t.id t.name
    (Format.pp_print_list Impl.pp)
    t.impls
