type id = int
type value = int

type descriptor = { id : id; name : string; lower : value; upper : value }

let max_word = 65535

let descriptor ~id ~name ~lower ~upper =
  if id <= 0 || id > max_word then
    Error (Printf.sprintf "attribute id %d outside (0, %d]" id max_word)
  else if lower < 0 || upper > max_word then
    Error
      (Printf.sprintf "attribute %d bounds [%d, %d] outside [0, %d]" id lower
         upper max_word)
  else if lower > upper then
    Error (Printf.sprintf "attribute %d has lower %d > upper %d" id lower upper)
  else Ok { id; name; lower; upper }

let dmax d = d.upper - d.lower

let pp_descriptor ppf d =
  Format.fprintf ppf "attr %d %S [%d, %d]" d.id d.name d.lower d.upper

module Int_map = Map.Make (Int)

module Schema = struct
  type t = descriptor Int_map.t

  let empty = Int_map.empty

  let add d t =
    if Int_map.mem d.id t then
      Error (Printf.sprintf "duplicate attribute id %d in schema" d.id)
    else Ok (Int_map.add d.id d t)

  let of_list ds =
    List.fold_left
      (fun acc d -> Result.bind acc (add d))
      (Ok empty) ds

  let find t id = Int_map.find_opt id t
  let mem t id = Int_map.mem id t
  let descriptor_dmax (d : descriptor) = d.upper - d.lower
  let dmax t id = Option.map descriptor_dmax (find t id)

  let recip t id =
    Option.map (fun d -> Fxp.Q15.recip_succ (descriptor_dmax d)) (find t id)
  let descriptors t = List.map snd (Int_map.bindings t)
  let cardinal = Int_map.cardinal

  let union a b =
    Int_map.fold (fun _ d acc -> Result.bind acc (add d)) b (Ok a)

  let equal a b =
    Int_map.equal
      (fun x y ->
        x.id = y.id && String.equal x.name y.name && x.lower = y.lower
        && x.upper = y.upper)
      a b

  let pp ppf t =
    Format.fprintf ppf "@[<v>%a@]"
      (Format.pp_print_list pp_descriptor)
      (descriptors t)
end
