type error = Unknown_type of int | No_implementations of int

type 'score ranked = { impl : Impl.t; score : 'score }

let error_to_string = function
  | Unknown_type id -> Printf.sprintf "function type %d not in case base" id
  | No_implementations id ->
      Printf.sprintf "function type %d has no implementations" id

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

let equal_error a b =
  match (a, b) with
  | Unknown_type x, Unknown_type y | No_implementations x, No_implementations y
    ->
      x = y
  | (Unknown_type _ | No_implementations _), _ -> false
