type ranked = float Retrieval.ranked

let score_impl ?(amalgamation = Similarity.Weighted_sum) schema request impl =
  let pair (aid, rvalue, weight) =
    match (Impl.find_attr impl aid, Attr.Schema.dmax schema aid) with
    | None, _ | _, None -> (weight, Similarity.local_missing)
    | Some cvalue, Some dmax ->
        (weight, Similarity.local ~dmax rvalue cvalue)
  in
  let pairs = List.map pair (Request.normalized_weights request) in
  Similarity.amalgamate amalgamation pairs

let rank_all ?amalgamation casebase (request : Request.t) =
  match Casebase.find_type casebase request.type_id with
  | None -> Error (Retrieval.Unknown_type request.type_id)
  | Some ft when Ftype.impl_count ft = 0 ->
      Error (Retrieval.No_implementations request.type_id)
  | Some ft ->
      let score impl =
        {
          Retrieval.impl;
          score = score_impl ?amalgamation casebase.schema request impl;
        }
      in
      let scored = List.map score ft.Ftype.impls in
      (* Stable descending sort: ties keep case-base order, matching the
         hardware's strict greater-than best-register update. *)
      Ok
        (List.stable_sort
           (fun a b -> Float.compare b.Retrieval.score a.Retrieval.score)
           scored)

let best ?amalgamation casebase request =
  Result.bind (rank_all ?amalgamation casebase request) (function
    | [] -> Error (Retrieval.No_implementations request.Request.type_id)
    | top :: _ -> Ok top)

let take n list =
  let rec loop n acc = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: rest -> loop (n - 1) (x :: acc) rest
  in
  loop n [] list

let n_best ?amalgamation ~n casebase request =
  Result.map (take n) (rank_all ?amalgamation casebase request)

let above_threshold ?amalgamation ~threshold casebase request =
  Result.map
    (List.filter (fun r -> r.Retrieval.score >= threshold))
    (rank_all ?amalgamation casebase request)
