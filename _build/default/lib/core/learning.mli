(** Dynamic case-base maintenance — the paper's Sec. 5 outlook
    ("dynamic update mechanisms of Case-Base-data structures and
    function repositories at run-time enabling for a self-learning
    system") and the CBR retain step of Fig. 2.

    All operations are functional: they return a fresh, fully
    re-validated case base.  Layout images must be regenerated after an
    update (the paper's tree is static precisely because the hardware
    image is compiled at design time). *)

val retain_variant :
  Casebase.t -> type_id:int -> Impl.t -> (Casebase.t, string) result
(** Add a newly learned implementation variant to a function type (the
    CBR "retain" of a solved case).  Fails on an unknown type, a
    duplicate implementation ID, or attribute values outside the
    schema bounds (widen first with {!widen_schema_for}). *)

val forget_variant :
  Casebase.t -> type_id:int -> impl_id:int -> (Casebase.t, string) result
(** Remove a variant (e.g. its configuration data left the repository). *)

val add_type : Casebase.t -> Ftype.t -> (Casebase.t, string) result

val remove_type : Casebase.t -> type_id:int -> (Casebase.t, string) result

val observe :
  Casebase.t ->
  type_id:int ->
  impl_id:int ->
  measurements:(Attr.id * Attr.value) list ->
  smoothing:float ->
  (Casebase.t, string) result
(** Revise a stored case from run-time measurements: each measured
    attribute value moves the stored value by exponential smoothing
    ([new = round((1-a) * old + a * measured)], clamped into the schema
    bounds).  [smoothing] must lie in (0, 1]; measurements of
    attributes the variant does not carry are an error (retain a new
    variant instead). *)

val widen_schema_for : Casebase.t -> Impl.t -> (Casebase.t, string) result
(** Extend the design-time bounds so the given variant's values fit:
    per attribute, lower/upper move outward when needed and unknown
    attribute IDs gain fresh descriptors.  Widening changes [dmax] and
    therefore similarity normalisation — callers should re-run
    retrievals, not reuse cached scores. *)
