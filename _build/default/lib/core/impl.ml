type t = {
  id : int;
  target : Target.t;
  attrs : (Attr.id * Attr.value) list;
}

let rec check_sorted_unique = function
  | [] | [ _ ] -> Ok ()
  | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then Error (Printf.sprintf "duplicate attribute id %d" a)
      else check_sorted_unique rest

let make ~id ~target attrs =
  if id <= 0 || id > Attr.max_word then
    Error (Printf.sprintf "implementation id %d outside (0, %d]" id Attr.max_word)
  else
    let bad =
      List.find_opt
        (fun (aid, v) ->
          aid <= 0 || aid > Attr.max_word || v < 0 || v > Attr.max_word)
        attrs
    in
    match bad with
    | Some (aid, v) ->
        Error
          (Printf.sprintf "attribute (%d, %d) outside 16-bit word range" aid v)
    | None ->
        let sorted =
          List.sort (fun (a, _) (b, _) -> Int.compare a b) attrs
        in
        Result.map
          (fun () -> { id; target; attrs = sorted })
          (check_sorted_unique sorted)

let find_attr t id = List.assoc_opt id t.attrs
let attr_count t = List.length t.attrs
let attr_ids t = List.map fst t.attrs

let conforms schema t =
  let check (aid, v) =
    match Attr.Schema.find schema aid with
    | None ->
        Error
          (Printf.sprintf "impl %d: attribute %d not in schema" t.id aid)
    | Some d ->
        if v < d.Attr.lower || v > d.Attr.upper then
          Error
            (Printf.sprintf "impl %d: attribute %d value %d outside [%d, %d]"
               t.id aid v d.Attr.lower d.Attr.upper)
        else Ok ()
  in
  List.fold_left
    (fun acc pair -> Result.bind acc (fun () -> check pair))
    (Ok ()) t.attrs

let equal a b =
  a.id = b.id && Target.equal a.target b.target
  && List.equal (fun (i, v) (j, w) -> i = j && v = w) a.attrs b.attrs

let pp ppf t =
  Format.fprintf ppf "@[impl %d on %a:%a@]" t.id Target.pp t.target
    (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (i, v) ->
         Format.fprintf ppf " %d=%d" i v))
    t.attrs
