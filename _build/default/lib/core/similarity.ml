let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let local ~dmax a b =
  if dmax < 0 then invalid_arg "Similarity.local: negative dmax"
  else
    let d = float_of_int (abs (a - b)) in
    clamp01 (1.0 -. (d /. (1.0 +. float_of_int dmax)))

let local_missing = 0.0

let local_euclidean ~dmax a b =
  if dmax < 0 then invalid_arg "Similarity.local_euclidean: negative dmax"
  else
    let r = float_of_int (abs (a - b)) /. (1.0 +. float_of_int dmax) in
    clamp01 (1.0 -. (r *. r))

type amalgamation =
  | Weighted_sum
  | Minimum
  | Maximum
  | Weighted_geometric

let all_amalgamations = [ Weighted_sum; Minimum; Maximum; Weighted_geometric ]

let amalgamate kind pairs =
  match (kind, pairs) with
  | _, [] -> 0.0
  | Weighted_sum, _ ->
      clamp01 (List.fold_left (fun acc (w, s) -> acc +. (w *. s)) 0.0 pairs)
  | Minimum, _ -> List.fold_left (fun acc (_, s) -> Float.min acc s) 1.0 pairs
  | Maximum, _ -> List.fold_left (fun acc (_, s) -> Float.max acc s) 0.0 pairs
  | Weighted_geometric, _ ->
      let product =
        List.fold_left
          (fun acc (w, s) -> if s <= 0.0 then 0.0 else acc *. (s ** w))
          1.0 pairs
      in
      clamp01 product

let amalgamation_to_string = function
  | Weighted_sum -> "weighted-sum"
  | Minimum -> "minimum"
  | Maximum -> "maximum"
  | Weighted_geometric -> "weighted-geometric"

let amalgamation_of_string = function
  | "weighted-sum" -> Ok Weighted_sum
  | "minimum" -> Ok Minimum
  | "maximum" -> Ok Maximum
  | "weighted-geometric" -> Ok Weighted_geometric
  | s -> Error (Printf.sprintf "unknown amalgamation %S" s)

let pp_amalgamation ppf a =
  Format.pp_print_string ppf (amalgamation_to_string a)
