(** Line-oriented text format for case bases and requests.

    The on-disk counterpart of the Matlab export tools the paper
    mentions in Sec. 4.2 ("tools ... for creating and exporting all
    needed data structures").  Example:

    {v
    # audio library
    casebase "audio-dsp"
    schema
      attr 1 "bitwidth" 8 16
      attr 4 "sample-rate" 8 44
    type 1 "fir-equalizer"
      impl 1 fpga
        set 1 16
        set 4 44
    request 1
      want 1 16 1.0
      want 4 40 1.0
    v}

    [#] starts a comment; blank lines are ignored; indentation is
    cosmetic.  Quoted names may contain spaces but no double quotes or
    newlines (there is no escape syntax).  A document holds at most one
    case base and any number of requests. *)

type document = { casebase : Casebase.t option; requests : Request.t list }

type parse_error = { line : int; message : string }

val parse_document : string -> (document, parse_error) result

val parse_casebase : string -> (Casebase.t, parse_error) result
(** Requires the document to contain exactly one case base. *)

val parse_request : string -> (Request.t, parse_error) result
(** Requires the document to contain exactly one request. *)

val print_casebase : Casebase.t -> string
(** Canonical form; [parse_casebase (print_casebase cb)] equals [cb]. *)

val print_request : Request.t -> string
val print_document : document -> string
val pp_parse_error : Format.formatter -> parse_error -> unit
