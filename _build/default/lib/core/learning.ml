let ( let* ) = Result.bind

let rebuild (cb : Casebase.t) ?(schema = cb.schema) ftypes =
  Casebase.make ~name:cb.name ~schema ftypes

let update_type (cb : Casebase.t) type_id f =
  match Casebase.find_type cb type_id with
  | None -> Error (Printf.sprintf "function type %d not in case base" type_id)
  | Some ft ->
      let* updated = f ft in
      let ftypes =
        List.map
          (fun (existing : Ftype.t) ->
            if existing.id = type_id then updated else existing)
          cb.ftypes
      in
      rebuild cb ftypes

let retain_variant cb ~type_id impl =
  update_type cb type_id (fun ft ->
      Ftype.make ~id:ft.Ftype.id ~name:ft.Ftype.name (impl :: ft.Ftype.impls))

let forget_variant cb ~type_id ~impl_id =
  update_type cb type_id (fun ft ->
      match Ftype.find_impl ft impl_id with
      | None ->
          Error
            (Printf.sprintf "type %d has no implementation %d" type_id impl_id)
      | Some _ ->
          Ftype.make ~id:ft.Ftype.id ~name:ft.Ftype.name
            (List.filter
               (fun (i : Impl.t) -> i.id <> impl_id)
               ft.Ftype.impls))

let add_type (cb : Casebase.t) ft =
  if Casebase.find_type cb ft.Ftype.id <> None then
    Error (Printf.sprintf "function type %d already present" ft.Ftype.id)
  else rebuild cb (ft :: cb.ftypes)

let remove_type (cb : Casebase.t) ~type_id =
  if Casebase.find_type cb type_id = None then
    Error (Printf.sprintf "function type %d not in case base" type_id)
  else
    rebuild cb
      (List.filter (fun (ft : Ftype.t) -> ft.id <> type_id) cb.ftypes)

let smooth ~smoothing ~lower ~upper old measured =
  let blended =
    ((1.0 -. smoothing) *. float_of_int old)
    +. (smoothing *. float_of_int measured)
  in
  let rounded = int_of_float (Float.round blended) in
  min upper (max lower rounded)

let observe (cb : Casebase.t) ~type_id ~impl_id ~measurements ~smoothing =
  if smoothing <= 0.0 || smoothing > 1.0 || not (Float.is_finite smoothing)
  then Error "smoothing factor must lie in (0, 1]"
  else
    update_type cb type_id (fun ft ->
        match Ftype.find_impl ft impl_id with
        | None ->
            Error
              (Printf.sprintf "type %d has no implementation %d" type_id
                 impl_id)
        | Some impl ->
            let revise_attr (aid, old_value) =
              match List.assoc_opt aid measurements with
              | None -> Ok (aid, old_value)
              | Some measured -> (
                  match Attr.Schema.find cb.schema aid with
                  | None ->
                      Error
                        (Printf.sprintf "attribute %d not in schema" aid)
                  | Some d ->
                      Ok
                        ( aid,
                          smooth ~smoothing ~lower:d.Attr.lower
                            ~upper:d.Attr.upper old_value measured ))
            in
            let* unknown =
              match
                List.find_opt
                  (fun (aid, _) -> Impl.find_attr impl aid = None)
                  measurements
              with
              | Some (aid, _) ->
                  Error
                    (Printf.sprintf
                       "implementation %d carries no attribute %d (retain a \
                        new variant instead)"
                       impl_id aid)
              | None -> Ok ()
            in
            ignore unknown;
            let* revised =
              List.fold_left
                (fun acc pair ->
                  let* rev = acc in
                  let* entry = revise_attr pair in
                  Ok (entry :: rev))
                (Ok []) impl.Impl.attrs
            in
            let* revised_impl =
              Impl.make ~id:impl.Impl.id ~target:impl.Impl.target
                (List.rev revised)
            in
            Ftype.make ~id:ft.Ftype.id ~name:ft.Ftype.name
              (List.map
                 (fun (i : Impl.t) ->
                   if i.id = impl_id then revised_impl else i)
                 ft.Ftype.impls))

let widen_schema_for (cb : Casebase.t) (impl : Impl.t) =
  let widen_one schema (aid, value) =
    match Attr.Schema.find schema aid with
    | Some d ->
        if value >= d.Attr.lower && value <= d.Attr.upper then Ok schema
        else
          let* widened =
            Attr.descriptor ~id:aid ~name:d.Attr.name
              ~lower:(min d.Attr.lower value)
              ~upper:(max d.Attr.upper value)
          in
          (* Rebuild the schema with the widened descriptor. *)
          Attr.Schema.of_list
            (List.map
               (fun (existing : Attr.descriptor) ->
                 if existing.id = aid then widened else existing)
               (Attr.Schema.descriptors schema))
    | None ->
        let* fresh =
          Attr.descriptor ~id:aid
            ~name:(Printf.sprintf "attr-%d" aid)
            ~lower:value ~upper:value
        in
        Attr.Schema.add fresh schema
  in
  let* schema =
    List.fold_left
      (fun acc pair -> Result.bind acc (fun s -> widen_one s pair))
      (Ok cb.schema) impl.Impl.attrs
  in
  rebuild cb ~schema cb.ftypes
