(** A basic function type (level 0 of the implementation tree) together
    with all of its implementation variants. *)

type t = private {
  id : int;  (** Global function-type ID ([IDType] in Fig. 3). *)
  name : string;
  impls : Impl.t list;  (** Sorted by implementation ID. *)
}

val make : id:int -> name:string -> Impl.t list -> (t, string) result
(** Sorts the variant list; rejects non-positive type IDs and duplicate
    implementation IDs. *)

val find_impl : t -> int -> Impl.t option
val impl_count : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
