(** One implementation variant of a function type — a "case" in the
    case base.

    Each variant targets one execution resource and carries its QoS
    attribute/value pairs (Fig. 3, levels 1-2 of the implementation
    tree).  Attribute lists are kept sorted by ascending ID, the
    invariant Sec. 4.1 relies on for linear resume-scans. *)

type t = private {
  id : int;  (** Implementation ID, unique within its function type. *)
  target : Target.t;
  attrs : (Attr.id * Attr.value) list;  (** Sorted by ID, no duplicates. *)
}

val make :
  id:int -> target:Target.t -> (Attr.id * Attr.value) list -> (t, string) result
(** Sorts the attribute list; rejects non-positive IDs, duplicate
    attribute IDs and out-of-word-range values. *)

val find_attr : t -> Attr.id -> Attr.value option
val attr_count : t -> int
val attr_ids : t -> Attr.id list

val conforms : Attr.Schema.t -> t -> (unit, string) result
(** Checks every attribute is declared in the schema and its value lies
    within the design-time bounds. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
