type t = { name : string; schema : Attr.Schema.t; ftypes : Ftype.t list }

type stats = {
  type_count : int;
  impl_count : int;
  attr_entry_count : int;
  max_impls_per_type : int;
  max_attrs_per_impl : int;
}

let rec check_unique = function
  | [] | [ _ ] -> Ok ()
  | (a : Ftype.t) :: (b :: _ as rest) ->
      if a.Ftype.id = b.Ftype.id then
        Error (Printf.sprintf "duplicate function-type id %d" a.Ftype.id)
      else check_unique rest

let check_conformance schema ftypes =
  let check_type (ft : Ftype.t) =
    List.fold_left
      (fun acc impl -> Result.bind acc (fun () -> Impl.conforms schema impl))
      (Ok ()) ft.Ftype.impls
  in
  List.fold_left
    (fun acc ft -> Result.bind acc (fun () -> check_type ft))
    (Ok ()) ftypes

let make ~name ~schema ftypes =
  let sorted =
    List.sort (fun (a : Ftype.t) (b : Ftype.t) -> Int.compare a.id b.id) ftypes
  in
  Result.bind (check_unique sorted) (fun () ->
      Result.map
        (fun () -> { name; schema; ftypes = sorted })
        (check_conformance schema sorted))

let derive_schema ?(naming = fun id -> Printf.sprintf "attr-%d" id) ftypes =
  let module M = Map.Make (Int) in
  let widen bounds (aid, v) =
    M.update aid
      (function
        | None -> Some (v, v) | Some (lo, hi) -> Some (min lo v, max hi v))
      bounds
  in
  let bounds =
    List.fold_left
      (fun acc (ft : Ftype.t) ->
        List.fold_left
          (fun acc (impl : Impl.t) ->
            List.fold_left widen acc impl.Impl.attrs)
          acc ft.Ftype.impls)
      M.empty ftypes
  in
  M.fold
    (fun aid (lower, upper) acc ->
      Result.bind acc (fun schema ->
          Result.bind
            (Attr.descriptor ~id:aid ~name:(naming aid) ~lower ~upper)
            (fun d -> Attr.Schema.add d schema)))
    bounds
    (Ok Attr.Schema.empty)

let find_type t id = List.find_opt (fun (ft : Ftype.t) -> ft.id = id) t.ftypes

let find_impl t ~type_id ~impl_id =
  Option.bind (find_type t type_id) (fun ft -> Ftype.find_impl ft impl_id)

let stats t =
  let fold (acc : stats) (ft : Ftype.t) =
    let impls = List.length ft.Ftype.impls in
    let attrs =
      List.fold_left (fun n impl -> n + Impl.attr_count impl) 0 ft.Ftype.impls
    in
    let max_attrs =
      List.fold_left
        (fun m impl -> max m (Impl.attr_count impl))
        acc.max_attrs_per_impl ft.Ftype.impls
    in
    {
      type_count = acc.type_count + 1;
      impl_count = acc.impl_count + impls;
      attr_entry_count = acc.attr_entry_count + attrs;
      max_impls_per_type = max acc.max_impls_per_type impls;
      max_attrs_per_impl = max_attrs;
    }
  in
  List.fold_left fold
    {
      type_count = 0;
      impl_count = 0;
      attr_entry_count = 0;
      max_impls_per_type = 0;
      max_attrs_per_impl = 0;
    }
    t.ftypes

let equal a b =
  String.equal a.name b.name
  && Attr.Schema.equal a.schema b.schema
  && List.equal Ftype.equal a.ftypes b.ftypes

let pp ppf t =
  Format.fprintf ppf "@[<v 2>casebase %S:@ %a@ %a@]" t.name Attr.Schema.pp
    t.schema
    (Format.pp_print_list Ftype.pp)
    t.ftypes

let pp_stats ppf s =
  Format.fprintf ppf
    "types=%d impls=%d attr-entries=%d max-impls/type=%d max-attrs/impl=%d"
    s.type_count s.impl_count s.attr_entry_count s.max_impls_per_type
    s.max_attrs_per_impl
