type t = Fpga | Dsp | Gpp | Asic | Custom of string

let all_builtin = [ Fpga; Dsp; Gpp; Asic ]

let to_string = function
  | Fpga -> "fpga"
  | Dsp -> "dsp"
  | Gpp -> "gpp"
  | Asic -> "asic"
  | Custom name -> "custom:" ^ name

let of_string s =
  match s with
  | "fpga" -> Ok Fpga
  | "dsp" -> Ok Dsp
  | "gpp" -> Ok Gpp
  | "asic" -> Ok Asic
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "custom" && i + 1 < String.length s ->
          Ok (Custom (String.sub s (i + 1) (String.length s - i - 1)))
      | Some _ | None -> Error (Printf.sprintf "unknown target %S" s))

let equal a b =
  match (a, b) with
  | Fpga, Fpga | Dsp, Dsp | Gpp, Gpp | Asic, Asic -> true
  | Custom x, Custom y -> String.equal x y
  | (Fpga | Dsp | Gpp | Asic | Custom _), _ -> false

let rank = function Fpga -> 0 | Dsp -> 1 | Gpp -> 2 | Asic -> 3 | Custom _ -> 4

let compare a b =
  match (a, b) with
  | Custom x, Custom y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let pp ppf t = Format.pp_print_string ppf (to_string t)
