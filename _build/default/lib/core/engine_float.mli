(** Double-precision reference retrieval engine.

    Plays the role of the paper's "high precision floating point Matlab
    simulation": the golden model the fixed-point datapath
    ({!Engine_fixed}, [Rtlsim]) must agree with.

    Ranking is {e stable}: on equal scores the variant listed first in
    the case base wins, matching the hardware's strict [S > S_best]
    update rule (Fig. 6). *)

type ranked = float Retrieval.ranked

val score_impl :
  ?amalgamation:Similarity.amalgamation ->
  Attr.Schema.t ->
  Request.t ->
  Impl.t ->
  float
(** Global similarity of one variant against the request.  Constraints
    the variant (or the schema) does not know contribute local
    similarity 0.  Weights are normalised internally. *)

val rank_all :
  ?amalgamation:Similarity.amalgamation ->
  Casebase.t ->
  Request.t ->
  (ranked list, Retrieval.error) result
(** Every variant of the requested type, best first. *)

val best :
  ?amalgamation:Similarity.amalgamation ->
  Casebase.t ->
  Request.t ->
  (ranked, Retrieval.error) result
(** The most-similar variant — the paper's Fig. 6 algorithm. *)

val n_best :
  ?amalgamation:Similarity.amalgamation ->
  n:int ->
  Casebase.t ->
  Request.t ->
  (ranked list, Retrieval.error) result
(** Up to [n] best variants (the paper's announced "next step",
    Sec. 5). [n <= 0] yields an empty list. *)

val above_threshold :
  ?amalgamation:Similarity.amalgamation ->
  threshold:float ->
  Casebase.t ->
  Request.t ->
  (ranked list, Retrieval.error) result
(** Variants whose score is [>= threshold], best first — the rejection
    rule of Sec. 3 ("reject all results below a given threshold
    similarity"). *)
