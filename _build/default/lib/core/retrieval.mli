(** Types shared by the retrieval engines. *)

type error =
  | Unknown_type of int
      (** The requested function type is absent from the case base.  The
          paper notes this "should not happen" since functional
          requirements are known at design time — it is still an error a
          run-time system must surface. *)
  | No_implementations of int
      (** The function type exists but its variant list is empty. *)

type 'score ranked = { impl : Impl.t; score : 'score }
(** One scored implementation variant. *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit
val equal_error : error -> error -> bool
