type constr = { attr : Attr.id; value : Attr.value; weight : float }

type t = { type_id : int; constraints : constr list }

let rec check_unique = function
  | [] | [ _ ] -> Ok ()
  | a :: (b :: _ as rest) ->
      if a.attr = b.attr then
        Error (Printf.sprintf "duplicate constraint on attribute %d" a.attr)
      else check_unique rest

let make ~type_id triples =
  if type_id <= 0 || type_id > Attr.max_word then
    Error
      (Printf.sprintf "function-type id %d outside (0, %d]" type_id
         Attr.max_word)
  else
    let bad =
      List.find_opt
        (fun (aid, v, w) ->
          aid <= 0 || aid > Attr.max_word || v < 0 || v > Attr.max_word
          || (not (Float.is_finite w))
          || w <= 0.0)
        triples
    in
    match bad with
    | Some (aid, v, w) ->
        Error
          (Printf.sprintf "constraint (attr %d, value %d, weight %g) invalid"
             aid v w)
    | None ->
        let constraints =
          triples
          |> List.map (fun (attr, value, weight) -> { attr; value; weight })
          |> List.sort (fun a b -> Int.compare a.attr b.attr)
        in
        Result.map
          (fun () -> { type_id; constraints })
          (check_unique constraints)

let equal_weights ~type_id pairs =
  make ~type_id (List.map (fun (aid, v) -> (aid, v, 1.0)) pairs)

let normalized_weights t =
  let total = List.fold_left (fun acc c -> acc +. c.weight) 0.0 t.constraints in
  if total <= 0.0 then []
  else List.map (fun c -> (c.attr, c.value, c.weight /. total)) t.constraints

let find t aid = List.find_opt (fun c -> c.attr = aid) t.constraints
let constraint_count t = List.length t.constraints

let drop_constraint t aid =
  { t with constraints = List.filter (fun c -> c.attr <> aid) t.constraints }

let update t aid f =
  match find t aid with
  | None -> Error (Printf.sprintf "request has no constraint on attribute %d" aid)
  | Some _ ->
      let triples =
        List.map
          (fun c ->
            let c = if c.attr = aid then f c else c in
            (c.attr, c.value, c.weight))
          t.constraints
      in
      make ~type_id:t.type_id triples

let reweight t aid weight = update t aid (fun c -> { c with weight })
let with_value t aid value = update t aid (fun c -> { c with value })

let equal a b =
  a.type_id = b.type_id
  && List.equal
       (fun x y ->
         x.attr = y.attr && x.value = y.value && Float.equal x.weight y.weight)
       a.constraints b.constraints

let pp ppf t =
  Format.fprintf ppf "@[request type=%d%a@]" t.type_id
    (Format.pp_print_list ~pp_sep:(fun _ () -> ()) (fun ppf c ->
         Format.fprintf ppf " %d=%d(w=%g)" c.attr c.value c.weight))
    t.constraints
