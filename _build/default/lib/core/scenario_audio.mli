(** The paper's running example (Fig. 3 / Table 1): an audio application
    requesting an FIR-equalizer with QoS constraints, against a case
    base offering FPGA, DSP and general-purpose-processor variants.

    Attribute dictionary:
    - 1: processing bitwidth (bits), design-global bounds [8, 16]
    - 2: processing mode (0 = integer, 1 = float), bounds [0, 1]
    - 3: output mode (0 = mono, 1 = stereo, 2 = surround), bounds [0, 2]
    - 4: sampling rate (kSamples/s), design-global bounds [8, 44]

    The bounds reproduce the paper's dmax table exactly
    (16-8=8, 2-0=2, 44-8=36). *)

val fir_equalizer_type_id : int
(** 1 — [IDType] of the FIR equalizer. *)

val fft_type_id : int
(** 2 — the 1D-FFT type also present in Fig. 3's tree. *)

val schema : Attr.Schema.t
val casebase : Casebase.t

val request : Request.t
(** Desired type FIR equalizer; bitwidth 16, stereo output, 40 kS/s;
    equal weights (w = 1/3). *)

val paper_globals : (int * float) list
(** Implementation ID -> global similarity as printed in Table 1:
    [(1, 0.85); (2, 0.96); (3, 0.43)]. *)

val expected_globals : (int * float) list
(** Implementation ID -> full-precision global similarity:
    [(1, 0.85286...); (2, 0.96396...); (3, 0.43056...)]. *)

val expected_best_impl : int
(** 2 — the DSP variant wins. *)

val relaxed_request : Request.t
(** The Sec. 3 relaxation scenario: drop the sampling-rate constraint
    and lower the bitwidth demand to 8, which lets the low-performance
    GP-processor variant become acceptable. *)
