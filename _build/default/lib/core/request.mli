(** A QoS-constrained function request (Fig. 3, left).

    A request names the desired function type and an {e incomplete}
    subset of constraining attributes — attributes the caller does not
    care about are simply absent (Sec. 3).  Each constraint carries a
    relative weight; engines normalise weights so they sum to 1 as
    equation (2) requires. *)

type constr = {
  attr : Attr.id;
  value : Attr.value;
  weight : float;  (** Relative importance, strictly positive. *)
}

type t = private {
  type_id : int;  (** Desired function type. *)
  constraints : constr list;  (** Sorted by attribute ID, no duplicates. *)
}

val make : type_id:int -> (Attr.id * Attr.value * float) list -> (t, string) result
(** Sorts constraints by ID; rejects duplicates, non-positive weights
    and out-of-word-range IDs/values.  An empty constraint list is
    legal (a pure type lookup). *)

val equal_weights : type_id:int -> (Attr.id * Attr.value) list -> (t, string) result
(** Convenience: every constraint gets weight 1 (engines normalise). *)

val normalized_weights : t -> (Attr.id * Attr.value * float) list
(** Constraints with weights rescaled to sum to 1.  Empty list when the
    request has no constraints. *)

val find : t -> Attr.id -> constr option
val constraint_count : t -> int

val drop_constraint : t -> Attr.id -> t
(** Remove one constraint — the unit step of the relaxation loop the
    paper sketches in Sec. 3 ("repeat its request with rather relaxed
    constraints"). *)

val reweight : t -> Attr.id -> float -> (t, string) result
(** Replace the weight of one constraint. *)

val with_value : t -> Attr.id -> Attr.value -> (t, string) result
(** Replace the value of one constraint (value-level relaxation). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
