lib/core/engine_fixed.ml: Attr Casebase Engine_float Ftype Fxp Impl List Request Result Retrieval
