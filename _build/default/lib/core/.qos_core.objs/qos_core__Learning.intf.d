lib/core/learning.mli: Attr Casebase Ftype Impl
