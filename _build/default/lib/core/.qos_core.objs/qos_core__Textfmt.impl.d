lib/core/textfmt.ml: Attr Buffer Casebase Format Ftype Impl List Option Printf Request Result String Target
