lib/core/ftype.ml: Attr Format Impl Int List Printf Result String
