lib/core/similarity.mli: Attr Format
