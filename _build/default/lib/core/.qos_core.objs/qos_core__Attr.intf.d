lib/core/attr.mli: Format Fxp
