lib/core/casebase.mli: Attr Format Ftype Impl
