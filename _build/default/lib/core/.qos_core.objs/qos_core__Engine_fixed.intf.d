lib/core/engine_fixed.mli: Attr Casebase Fxp Impl Request Retrieval
