lib/core/target.ml: Format Int Printf String
