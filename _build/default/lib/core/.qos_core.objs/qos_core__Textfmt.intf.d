lib/core/textfmt.mli: Casebase Format Request
