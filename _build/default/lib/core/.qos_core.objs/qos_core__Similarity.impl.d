lib/core/similarity.ml: Float Format List Printf
