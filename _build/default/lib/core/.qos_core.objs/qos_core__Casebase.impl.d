lib/core/casebase.ml: Attr Format Ftype Impl Int List Map Option Printf Result String
