lib/core/retrieval.mli: Format Impl
