lib/core/retrieval.ml: Format Impl Printf
