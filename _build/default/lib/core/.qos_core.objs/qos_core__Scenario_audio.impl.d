lib/core/scenario_audio.ml: Attr Casebase Ftype Impl Request Target
