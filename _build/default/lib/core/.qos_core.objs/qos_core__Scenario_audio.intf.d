lib/core/scenario_audio.mli: Attr Casebase Request
