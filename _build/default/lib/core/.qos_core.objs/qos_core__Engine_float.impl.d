lib/core/engine_float.ml: Attr Casebase Float Ftype Impl List Request Result Retrieval Similarity
