lib/core/learning.ml: Attr Casebase Float Ftype Impl List Printf Result
