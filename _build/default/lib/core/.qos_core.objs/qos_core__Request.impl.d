lib/core/request.ml: Attr Float Format Int List Printf Result
