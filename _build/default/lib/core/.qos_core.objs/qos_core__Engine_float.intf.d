lib/core/engine_float.mli: Attr Casebase Impl Request Retrieval Similarity
