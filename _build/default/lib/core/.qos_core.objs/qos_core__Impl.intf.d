lib/core/impl.mli: Attr Format Target
