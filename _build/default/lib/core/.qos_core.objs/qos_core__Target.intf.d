lib/core/target.mli: Format
