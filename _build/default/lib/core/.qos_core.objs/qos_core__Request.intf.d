lib/core/request.mli: Attr Format
