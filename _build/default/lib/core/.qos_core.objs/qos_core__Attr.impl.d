lib/core/attr.ml: Format Fxp Int List Map Option Printf Result String
