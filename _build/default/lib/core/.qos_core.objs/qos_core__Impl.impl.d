lib/core/impl.ml: Attr Format Int List Printf Result Target
