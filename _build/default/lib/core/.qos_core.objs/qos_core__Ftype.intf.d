lib/core/ftype.mli: Format Impl
