(** Local similarity measures and amalgamation functions (Sec. 2.2).

    A {e local} measure maps one request/case attribute pair into
    [0, 1]; an {e amalgamation} folds the per-attribute local
    similarities into one global similarity, also in [0, 1]. *)

val local : dmax:int -> Attr.value -> Attr.value -> float
(** Equation (1): [1 - d / (1 + dmax)] with Manhattan distance
    [d = |a - b|], clamped into [0, 1] (a request value outside the
    design-time bounds can otherwise push the raw formula negative).
    @raise Invalid_argument when [dmax < 0]. *)

val local_missing : float
(** Similarity assigned when the case lacks the requested attribute:
    0 — "a missing attribute can be seen as unsatisfiable requirement"
    (Sec. 3). *)

val local_euclidean : dmax:int -> Attr.value -> Attr.value -> float
(** Variant transformation using squared (Euclidean, one-dimensional)
    distance: [1 - (d / (1 + dmax))^2].  Provided for the measure
    comparison the paper alludes to; not used by the hardware. *)

(** How to combine weighted local similarities into a global one. *)
type amalgamation =
  | Weighted_sum  (** Equation (2) — the paper's choice. *)
  | Minimum  (** Weakest-link: min over [s_i] (weights ignored). *)
  | Maximum  (** Optimistic: max over [s_i] (weights ignored). *)
  | Weighted_geometric  (** [prod s_i ^ w_i]; 0 whenever any [s_i] is 0. *)

val all_amalgamations : amalgamation list

val amalgamate : amalgamation -> (float * float) list -> float
(** [amalgamate a pairs] folds [(weight, local-similarity)] pairs.
    Weights are assumed normalised (sum to 1); the empty list yields 0. *)

val amalgamation_to_string : amalgamation -> string
val amalgamation_of_string : string -> (amalgamation, string) result
val pp_amalgamation : Format.formatter -> amalgamation -> unit
