(** The case base: the function-implementation tree of Fig. 3/5 plus the
    design-time attribute schema (supplemental data). *)

type t = private {
  name : string;
  schema : Attr.Schema.t;
  ftypes : Ftype.t list;  (** Sorted by function-type ID. *)
}

type stats = {
  type_count : int;
  impl_count : int;  (** Total over all types. *)
  attr_entry_count : int;  (** Total attribute/value pairs over all impls. *)
  max_impls_per_type : int;
  max_attrs_per_impl : int;
}

val make :
  name:string -> schema:Attr.Schema.t -> Ftype.t list -> (t, string) result
(** Sorts function types; rejects duplicate type IDs, attributes missing
    from the schema, and out-of-bounds attribute values. *)

val derive_schema :
  ?naming:(Attr.id -> string) -> Ftype.t list -> (Attr.Schema.t, string) result
(** Builds the design-time schema the way the paper does: per attribute
    ID, bounds are the min/max over every value in the implementation
    library. *)

val find_type : t -> int -> Ftype.t option
val find_impl : t -> type_id:int -> impl_id:int -> Impl.t option
val stats : t -> stats
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_stats : Format.formatter -> stats -> unit
