lib/rtlgen/vhdl.mli: Qos_core
