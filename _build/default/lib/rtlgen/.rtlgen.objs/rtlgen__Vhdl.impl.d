lib/rtlgen/vhdl.ml: Array Buffer Engine_fixed Fxp Impl Memlayout Printf Qos_core Result Retrieval
