lib/rtlgen/memfiles.mli:
