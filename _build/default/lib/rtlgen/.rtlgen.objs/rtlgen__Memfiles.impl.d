lib/rtlgen/memfiles.ml: Array Buffer List Printf Result String
