(** Structural inventory of the retrieval unit's datapath (Fig. 7).

    This is the netlist-level description the resource estimator
    ([Resource]) prices to reproduce the Table 2 synthesis results.  It
    lists every register, arithmetic unit, comparator and multiplexer of
    the most-similar-retrieval datapath, the two BRAMs (CB-MEM and
    Req-MEM) and the two 18x18 hardware multipliers. *)

type component =
  | Register of { name : string; bits : int }
  | Adder of { name : string; bits : int }
  | Subtractor of { name : string; bits : int }
  | Abs_unit of { name : string; bits : int }
      (** Subtract + conditional negate — the ABS(X) block. *)
  | Comparator of { name : string; bits : int }
  | Multiplier of { name : string; a_bits : int; b_bits : int }
      (** Mapped onto a MULT18X18 primitive. *)
  | Mux of { name : string; inputs : int; bits : int }
  | Counter of { name : string; bits : int }
      (** Address counters / pointers into the memories. *)
  | Fsm of { name : string; states : int }
      (** One-hot control automaton. *)
  | Bram of { name : string; kbits : int }

val retrieval_unit : component list
(** The Fig. 7 datapath: request/CB address counters, attribute ID /
    value / weight / reciprocal registers, ABS difference unit, the two
    multipliers (similarity x reciprocal, similarity x weight),
    accumulator, best-score/best-ID registers, the result comparator,
    the memory muxes, and the Fig. 6 control FSM. *)

val compacted_retrieval_unit : component list
(** The Sec. 5 "compacted attribute block" variant: 32-bit wide memory
    port (double BRAM data width), an extra holding register, a slightly
    larger FSM. *)

val nbest_retrieval_unit : k:int -> component list
(** The Sec. 5 "n most similar" extension: the single best-score/ID
    register pair is replaced by [k] pairs plus an insertion comparator
    chain.  @raise Invalid_argument when [k < 1]. *)

val bram_count : component list -> int
val multiplier_count : component list -> int
val component_name : component -> string
val pp_component : Format.formatter -> component -> unit
