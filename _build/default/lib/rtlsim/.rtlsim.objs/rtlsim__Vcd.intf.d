lib/rtlsim/vcd.mli:
