lib/rtlsim/machine.ml: Format Fxp List Memlayout Printf Vcd
