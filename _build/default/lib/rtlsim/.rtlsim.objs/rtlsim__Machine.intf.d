lib/rtlsim/machine.mli: Format Fxp Memlayout Qos_core Vcd
