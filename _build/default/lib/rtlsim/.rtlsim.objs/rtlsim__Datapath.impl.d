lib/rtlsim/datapath.ml: Format List Printf
