lib/rtlsim/datapath.mli: Format
