lib/rtlsim/vcd.ml: Buffer Char Hashtbl Int List Printf Result String
