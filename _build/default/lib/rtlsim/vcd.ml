type signal = { signal_name : string; width : int }

type change = { at_cycle : int; signal : string; value : int }

(* VCD identifier codes: printable ASCII starting at '!'. *)
let code_of_index i = String.make 1 (Char.chr (33 + i))

let to_binary ~width v =
  String.init width (fun i ->
      if (v lsr (width - 1 - i)) land 1 = 1 then '1' else '0')

let render ?(timescale = "1ns") ?(module_name = "qos_retrieval_unit") ~signals
    changes =
  let ( let* ) = Result.bind in
  let* () =
    if List.length signals > 90 then Error "too many signals (max 90)"
    else Ok ()
  in
  let* () =
    let names = List.map (fun s -> s.signal_name) signals in
    if List.length (List.sort_uniq String.compare names) <> List.length names
    then Error "duplicate signal names"
    else Ok ()
  in
  let* () =
    match List.find_opt (fun s -> s.width < 1 || s.width > 64) signals with
    | Some s -> Error (Printf.sprintf "signal %s has invalid width" s.signal_name)
    | None -> Ok ()
  in
  let codes = Hashtbl.create 16 in
  List.iteri
    (fun i s -> Hashtbl.replace codes s.signal_name (code_of_index i, s.width))
    signals;
  let* () =
    let bad =
      List.find_opt
        (fun c ->
          c.at_cycle < 0 || c.value < 0
          ||
          match Hashtbl.find_opt codes c.signal with
          | None -> true
          | Some (_, width) -> width < 64 && c.value lsr width > 0)
        changes
    in
    match bad with
    | Some c -> Error (Printf.sprintf "invalid change for signal %S" c.signal)
    | None -> Ok ()
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date qosalloc rtlsim $end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" module_name);
  List.iter
    (fun s ->
      let code, _ = Hashtbl.find codes s.signal_name in
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" s.width code s.signal_name))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* Group by cycle, stable within a cycle. *)
  let sorted =
    List.stable_sort (fun a b -> Int.compare a.at_cycle b.at_cycle) changes
  in
  let last_cycle = ref (-1) in
  List.iter
    (fun c ->
      if c.at_cycle <> !last_cycle then begin
        Buffer.add_string buf (Printf.sprintf "#%d\n" c.at_cycle);
        last_cycle := c.at_cycle
      end;
      let code, width = Hashtbl.find codes c.signal in
      if width = 1 then
        Buffer.add_string buf (Printf.sprintf "%d%s\n" (c.value land 1) code)
      else
        Buffer.add_string buf
          (Printf.sprintf "b%s %s\n" (to_binary ~width c.value) code))
    sorted;
  Ok (Buffer.contents buf)
