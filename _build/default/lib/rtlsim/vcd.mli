(** Minimal Value-Change-Dump (IEEE 1364) writer.

    Renders a signal-change log — for example the waveform samples an
    instrumented {!Machine} run produces — into a VCD file that GTKWave
    and friends can open next to the generated VHDL. *)

type signal = {
  signal_name : string;  (** Identifier-safe, e.g. "cb_addr". *)
  width : int;  (** Bits; 1..64. *)
}

type change = {
  at_cycle : int;
  signal : string;  (** Must name a declared signal. *)
  value : int;
}

val render :
  ?timescale:string ->
  ?module_name:string ->
  signals:signal list ->
  change list ->
  (string, string) result
(** Changes may arrive unsorted; they are grouped by cycle.  Fails on an
    unknown signal name, a negative cycle/value, duplicate signal
    names, or a value wider than the declared signal.
    Default timescale "1ns" (one cycle rendered as one step) and module
    name "qos_retrieval_unit". *)
