type component =
  | Register of { name : string; bits : int }
  | Adder of { name : string; bits : int }
  | Subtractor of { name : string; bits : int }
  | Abs_unit of { name : string; bits : int }
  | Comparator of { name : string; bits : int }
  | Multiplier of { name : string; a_bits : int; b_bits : int }
  | Mux of { name : string; inputs : int; bits : int }
  | Counter of { name : string; bits : int }
  | Fsm of { name : string; states : int }
  | Bram of { name : string; kbits : int }

(* One entry per box of Fig. 7, plus the control FSM of Fig. 6 (11
   states: fetch-type, scan-type, select-impl, fetch-req-attr,
   fetch-supplemental, scan-impl-attr, compute-local, accumulate,
   compare-best, next-impl, done). *)
let retrieval_unit =
  [
    Bram { name = "cb_mem"; kbits = 18 };
    Bram { name = "req_mem"; kbits = 18 };
    Counter { name = "req_addr"; bits = 16 };
    Counter { name = "cb_addr"; bits = 16 };
    Counter { name = "supp_addr"; bits = 16 };
    Register { name = "req_type"; bits = 16 };
    Register { name = "attr_id"; bits = 16 };
    Register { name = "attr_value_req"; bits = 16 };
    Register { name = "attr_value_cb"; bits = 16 };
    Register { name = "weight"; bits = 16 };
    Register { name = "recip_dmax"; bits = 16 };
    Register { name = "impl_id"; bits = 16 };
    Register { name = "attr_list_ptr"; bits = 16 };
    Abs_unit { name = "abs_diff"; bits = 16 };
    Multiplier { name = "mul_recip"; a_bits = 16; b_bits = 16 };
    Multiplier { name = "mul_weight"; a_bits = 16; b_bits = 16 };
    Subtractor { name = "complement_one"; bits = 16 };
    Adder { name = "accumulate"; bits = 18 };
    Register { name = "sum_s"; bits = 18 };
    Register { name = "s_max"; bits = 16 };
    Register { name = "impl_id_max"; bits = 16 };
    Comparator { name = "best_compare"; bits = 16 };
    Comparator { name = "id_match"; bits = 16 };
    Comparator { name = "end_detect"; bits = 16 };
    Mux { name = "cb_addr_mux"; inputs = 4; bits = 16 };
    Mux { name = "req_addr_mux"; inputs = 2; bits = 16 };
    Mux { name = "local_sim_mux"; inputs = 2; bits = 16 };
    Fsm { name = "retrieval_ctrl"; states = 11 };
  ]

(* Compacted variant (Sec. 5): the BRAM ports are configured 32 bits
   wide so ID and value arrive in one access; one extra holding register
   and two extra FSM states for the pair alignment. *)
let compacted_retrieval_unit =
  List.map
    (function
      | Fsm { name; states } -> Fsm { name; states = states + 2 }
      | c -> c)
    retrieval_unit
  @ [ Register { name = "pair_hold"; bits = 16 } ]

let component_name = function
  | Register { name; _ }
  | Adder { name; _ }
  | Subtractor { name; _ }
  | Abs_unit { name; _ }
  | Comparator { name; _ }
  | Multiplier { name; _ }
  | Mux { name; _ }
  | Counter { name; _ }
  | Fsm { name; _ }
  | Bram { name; _ } ->
      name

(* N-best variant: the s_max / impl_id_max pair becomes a k-deep
   insertion register file with one comparator per kept entry. *)
let nbest_retrieval_unit ~k =
  if k < 1 then invalid_arg "Datapath.nbest_retrieval_unit: k must be >= 1"
  else
    let keep_regs =
      List.concat
        (List.init k (fun i ->
             [
               Register { name = Printf.sprintf "s_kept_%d" i; bits = 16 };
               Register { name = Printf.sprintf "id_kept_%d" i; bits = 16 };
               Comparator { name = Printf.sprintf "insert_cmp_%d" i; bits = 16 };
             ]))
    in
    List.filter
      (fun c ->
        match component_name c with
        | "s_max" | "impl_id_max" | "best_compare" -> false
        | _ -> true)
      retrieval_unit
    @ keep_regs

let bram_count components =
  List.length
    (List.filter (function Bram _ -> true | _ -> false) components)

let multiplier_count components =
  List.length
    (List.filter (function Multiplier _ -> true | _ -> false) components)

let pp_component ppf c =
  match c with
  | Register { name; bits } -> Format.fprintf ppf "reg %s[%d]" name bits
  | Adder { name; bits } -> Format.fprintf ppf "add %s[%d]" name bits
  | Subtractor { name; bits } -> Format.fprintf ppf "sub %s[%d]" name bits
  | Abs_unit { name; bits } -> Format.fprintf ppf "abs %s[%d]" name bits
  | Comparator { name; bits } -> Format.fprintf ppf "cmp %s[%d]" name bits
  | Multiplier { name; a_bits; b_bits } ->
      Format.fprintf ppf "mul %s[%dx%d]" name a_bits b_bits
  | Mux { name; inputs; bits } ->
      Format.fprintf ppf "mux %s[%d:%d]" name inputs bits
  | Counter { name; bits } -> Format.fprintf ppf "cnt %s[%d]" name bits
  | Fsm { name; states } -> Format.fprintf ppf "fsm %s{%d}" name states
  | Bram { name; kbits } -> Format.fprintf ppf "bram %s[%dk]" name kbits
