type t = { queue : (t -> unit) Heap.t; mutable clock : float }

let create () = { queue = Heap.create (); clock = 0.0 }

let now t = t.clock

let schedule_at t ~time callback =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %g is before now (%g)" time t.clock)
  else Heap.push t.queue ~time callback

let schedule t ~delay callback =
  if delay < 0.0 || not (Float.is_finite delay) then
    invalid_arg "Engine.schedule: negative or non-finite delay"
  else schedule_at t ~time:(t.clock +. delay) callback

let run ?(until = infinity) t =
  let rec loop fired =
    match Heap.peek_time t.queue with
    | None -> fired
    | Some time when time > until -> fired
    | Some _ -> (
        match Heap.pop t.queue with
        | None -> fired
        | Some (time, callback) ->
            t.clock <- time;
            callback t;
            loop (fired + 1))
  in
  loop 0

let pending t = Heap.size t.queue
