lib/desim/heap.mli:
