lib/desim/tracefile.ml: Buffer Format List Option Printf Result String Workload
