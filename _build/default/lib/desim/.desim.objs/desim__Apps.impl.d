lib/desim/apps.ml: Attr Casebase Ftype Impl List Qos_core Request Target Workload
