lib/desim/engine.mli:
