lib/desim/simulate.mli: Allocator Apps Format Qos_core Tracefile
