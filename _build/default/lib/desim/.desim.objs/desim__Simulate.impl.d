lib/desim/simulate.ml: Allocator Apps Bypass Catalog Device Engine Format Hashtbl List Manager Negotiation Option Placement Qos_core String Tracefile Workload
