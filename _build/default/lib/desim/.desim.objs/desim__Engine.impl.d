lib/desim/engine.ml: Float Heap Printf
