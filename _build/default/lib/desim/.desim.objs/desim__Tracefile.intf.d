lib/desim/tracefile.mli: Format Workload
