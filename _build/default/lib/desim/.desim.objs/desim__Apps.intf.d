lib/desim/apps.mli: Qos_core Workload
