(** Minimal discrete-event simulation core: a virtual clock and a
    min-heap of callbacks. *)

type t

val create : unit -> t

val now : t -> float
(** Simulated time in microseconds. *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [delay >= 0] relative to {!now}. @raise Invalid_argument otherwise. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Absolute; must not be in the past. *)

val run : ?until:float -> t -> int
(** Processes events in time order (insertion order among ties) until
    the queue empties or the clock would pass [until]; returns how many
    events fired. *)

val pending : t -> int
