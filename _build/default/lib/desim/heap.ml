type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let size t = t.size
let is_empty t = t.size = 0

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.data in
  if t.size = capacity then begin
    let bigger = Array.make (max 16 (2 * capacity)) entry in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if precedes t.data.(i) t.data.(parent) then begin
        let tmp = t.data.(i) in
        t.data.(i) <- t.data.(parent);
        t.data.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Sift down. *)
      let rec down i =
        let left = (2 * i) + 1 in
        let right = left + 1 in
        let smallest =
          if left < t.size && precedes t.data.(left) t.data.(i) then left else i
        in
        let smallest =
          if right < t.size && precedes t.data.(right) t.data.(smallest) then
            right
          else smallest
        in
        if smallest <> i then begin
          let tmp = t.data.(i) in
          t.data.(i) <- t.data.(smallest);
          t.data.(smallest) <- tmp;
          down smallest
        end
      in
      down 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.data.(0).time
