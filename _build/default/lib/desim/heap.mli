(** Array-based binary min-heap keyed by [(time, sequence)] — ties fire
    in insertion order, which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Sequence numbers are assigned internally. *)

val pop : 'a t -> (float * 'a) option
(** Smallest time (earliest inserted among equals), or [None]. *)

val peek_time : 'a t -> float option
