examples/self_learning.mli:
