examples/hardware_unit.mli:
