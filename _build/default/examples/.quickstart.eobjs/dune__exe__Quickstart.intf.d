examples/quickstart.mli:
