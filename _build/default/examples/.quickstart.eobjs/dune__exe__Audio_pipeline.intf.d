examples/audio_pipeline.mli:
