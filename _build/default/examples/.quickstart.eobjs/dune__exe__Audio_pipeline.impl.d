examples/audio_pipeline.ml: Allocator Desim Printf Qos_core Request
