examples/self_learning.ml: Casebase Engine_float Ftype Fxp Impl Learning List Option Printf Qos_core Retrieval Rtlsim Scenario_audio Target
