examples/automotive.mli:
