examples/multimedia_system.ml: Allocator Desim Format Printf Qos_core
