examples/hardware_unit.ml: Format Fxp List Mblaze Printf Qos_core Resource Rtlsim Scenario_audio Workload
