examples/multimedia_system.mli:
