examples/automotive.ml: Allocator Desim List Option Printf Qos_core Request Target
