examples/quickstart.ml: Attr Casebase Engine_fixed Engine_float Ftype Fxp Impl List Printf Qos_core Request Retrieval Rtlsim Target
