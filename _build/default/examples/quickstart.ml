(* Quickstart: build a case base with the public API, issue a
   QoS-constrained request and retrieve the most similar
   implementation variant — the paper's Fig. 3 / Table 1 walkthrough.

   Run with: dune exec examples/quickstart.exe *)

open Qos_core

let get = function Ok x -> x | Error e -> failwith e

let () =
  (* 1. Declare the QoS attribute schema: design-time value bounds per
     attribute type, from which the similarity normalisation (dmax)
     derives. *)
  let schema =
    get
      (Attr.Schema.of_list
         [
           get (Attr.descriptor ~id:1 ~name:"bitwidth" ~lower:8 ~upper:16);
           get (Attr.descriptor ~id:3 ~name:"output-mode" ~lower:0 ~upper:2);
           get (Attr.descriptor ~id:4 ~name:"sample-rate" ~lower:8 ~upper:44);
         ])
  in

  (* 2. Describe the implementation variants of one function type. *)
  let impl id target attrs = get (Impl.make ~id ~target attrs) in
  let fir_equalizer =
    get
      (Ftype.make ~id:1 ~name:"fir-equalizer"
         [
           impl 1 Target.Fpga [ (1, 16); (3, 2); (4, 44) ];
           impl 2 Target.Dsp [ (1, 16); (3, 1); (4, 44) ];
           impl 3 Target.Gpp [ (1, 8); (3, 0); (4, 22) ];
         ])
  in
  let casebase = get (Casebase.make ~name:"quickstart" ~schema [ fir_equalizer ]) in

  (* 3. Issue a request: desired type plus weighted QoS constraints.
     Incomplete constraint sets are fine — unconstrained attributes are
     simply not compared. *)
  let request =
    get
      (Request.make ~type_id:1 [ (1, 16, 1.0); (3, 1, 1.0); (4, 40, 1.0) ])
  in

  (* 4. Retrieve.  The float engine is the reference; the fixed engine
     computes what the 16-bit hardware computes. *)
  print_endline "ranking (float reference engine):";
  (match Engine_float.rank_all casebase request with
  | Error e -> print_endline (Retrieval.error_to_string e)
  | Ok ranked ->
      List.iter
        (fun (r : Engine_float.ranked) ->
          Printf.printf "  impl %d on %-4s  S = %.4f\n" r.Retrieval.impl.Impl.id
            (Target.to_string r.Retrieval.impl.Impl.target)
            r.Retrieval.score)
        ranked);

  (match Engine_fixed.best casebase request with
  | Error e -> print_endline (Retrieval.error_to_string e)
  | Ok best ->
      Printf.printf "fixed-point best: impl %d (raw Q15 score %d)\n"
        best.Retrieval.impl.Impl.id
        (Fxp.Q15.to_raw best.Retrieval.score));

  (* 5. The same retrieval on the cycle-accurate hardware model. *)
  match Rtlsim.Machine.retrieve casebase request with
  | Error e -> print_endline (Rtlsim.Machine.error_to_string e)
  | Ok o ->
      Printf.printf "hardware unit: impl %d in %d cycles (%d BRAM reads)\n"
        o.Rtlsim.Machine.best_impl_id o.Rtlsim.Machine.stats.Rtlsim.Machine.cycles
        (o.Rtlsim.Machine.stats.Rtlsim.Machine.cb_accesses
        + o.Rtlsim.Machine.stats.Rtlsim.Machine.req_accesses)
