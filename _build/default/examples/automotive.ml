(* Automotive scenario: a safety-critical ECU function preempts
   infotainment on a constrained platform, and a cruise-control request
   that misses the similarity threshold is granted after the Sec. 3
   relaxation loop.

   Run with: dune exec examples/automotive.exe *)

open Qos_core
module M = Allocator.Manager
module N = Allocator.Negotiation

let get = function Ok x -> x | Error e -> failwith e

let () =
  let casebase = Desim.Apps.reference_casebase in
  (* A deliberately tight platform: one small FPGA and a single DSP slot. *)
  let fpga =
    get
      (Allocator.Device.make ~device_id:"fpga0" ~target:Target.Fpga ~capacity:300
         ())
  in
  let dsp =
    get (Allocator.Device.make ~device_id:"dsp0" ~target:Target.Dsp ~capacity:1 ())
  in
  let manager =
    M.create ~casebase ~devices:[ fpga; dsp ]
      ~catalog:(Allocator.Catalog.of_casebase_default casebase)
      ~policy:{ M.default_policy with M.max_candidates = 2 }
      ()
  in

  (* 1. The MP3 player grabs the FPGA first (low priority). *)
  let mp3_request =
    get (Request.make ~type_id:3 [ (1, 16, 1.0); (3, 2, 1.0); (4, 48, 1.0) ])
  in
  (match M.allocate manager ~app_id:"mp3" ~priority:2 mp3_request with
  | Ok g ->
      Printf.printf "mp3 decoder placed on %s (%d units)\n" g.M.task.M.device_id
        g.M.task.M.units
  | Error r -> Printf.printf "mp3 refused: %s\n" (M.refusal_to_string r));
  Printf.printf "fpga free units: %d\n"
    (Option.get (M.free_units manager ~device_id:"fpga0"));

  (* 2. The ECU function arrives with a hard-safety priority: it needs
     the FPGA variant and evicts the infotainment task. *)
  let ecu_request =
    get (Request.make ~type_id:5 [ (5, 5, 1.5); (9, 2, 1.5) ])
  in
  (match M.allocate manager ~app_id:"ecu" ~priority:9 ecu_request with
  | Ok g ->
      Printf.printf "\necu control granted: impl %d on %s, preempted %d task(s)\n"
        g.M.task.M.impl_id g.M.task.M.device_id
        (List.length g.M.preempted);
      List.iter
        (fun victim ->
          Printf.printf "  evicted: %s's task %d (priority %d)\n"
            victim.M.app_id victim.M.task_id victim.M.priority)
        g.M.preempted
  | Error r -> Printf.printf "ecu refused: %s\n" (M.refusal_to_string r));

  (* 3. Cruise control prefers the FPGA variant, but the ECU now owns
     the fabric.  The manager falls back to the next acceptable variant
     (the DSP one) — the paper's "alternative implementation can be
     offered" path — inside the negotiation loop. *)
  let strict_cruise =
    get
      (Request.make ~type_id:6
         [ (5, 1, 1.0); (6, 10, 1.0); (9, 0, 1.0); (1, 16, 0.2) ])
  in
  print_endline "\ncruise-control negotiation:";
  let outcome =
    N.negotiate ~max_rounds:4 manager ~app_id:"cruise" ~priority:4 strict_cruise
  in
  List.iteri
    (fun i (round : N.round) ->
      Printf.printf "  round %d (%d constraints): %s\n" (i + 1)
        (Request.constraint_count round.N.round_request)
        (match round.N.round_result with
        | Ok g ->
            Printf.sprintf "granted impl %d (similarity %.3f)"
              g.M.task.M.impl_id g.M.task.M.score
        | Error r -> M.refusal_to_string r))
    outcome.N.rounds;
  (match outcome.N.final with
  | Ok g ->
      Printf.printf "cruise control is running on %s (impl %d).\n"
        g.M.task.M.device_id g.M.task.M.impl_id
  | Error _ -> print_endline "cruise control could not be served.");
  Printf.printf "resident tasks at end: %d\n" (List.length (M.tasks manager))
