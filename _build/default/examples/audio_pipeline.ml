(* Audio pipeline: an application repeatedly calling the same DSP
   functions through the allocation manager.  Demonstrates the
   Sec. 3 bypass tokens: the first call pays retrieval + placement,
   repeated identical calls are served from the token cache while the
   instance stays resident.

   Run with: dune exec examples/audio_pipeline.exe *)

open Qos_core
module M = Allocator.Manager

let get = function Ok x -> x | Error e -> failwith e

let () =
  let casebase = Desim.Apps.reference_casebase in
  let manager =
    M.create ~casebase
      ~devices:(Allocator.Device.default_system ())
      ~catalog:(Allocator.Catalog.of_casebase_default casebase)
      ()
  in
  (* The audio session: equalizer + MP3 decode, same constraints each
     period (fixed design-time QoS needs, so fingerprints coincide). *)
  let equalizer_request =
    get (Request.make ~type_id:1 [ (1, 16, 1.0); (3, 1, 1.0); (4, 44, 1.0) ])
  in
  let decoder_request =
    get (Request.make ~type_id:3 [ (1, 16, 1.0); (4, 44, 1.0); (5, 100, 0.5) ])
  in
  let call name request =
    match M.allocate manager ~app_id:"audio-app" ~priority:2 request with
    | Ok grant ->
        Printf.printf "  %-10s -> impl %d on %-6s %s (setup %.1f us)\n" name
          grant.M.task.M.impl_id grant.M.task.M.device_id
          (if grant.M.via_bypass then "[bypass]" else "[retrieval]")
          grant.M.setup_time_us
    | Error refusal ->
        Printf.printf "  %-10s -> refused: %s\n" name (M.refusal_to_string refusal)
  in
  print_endline "audio session (10 periods):";
  for period = 1 to 10 do
    Printf.printf "period %d:\n" period;
    call "equalizer" equalizer_request;
    call "decoder" decoder_request
  done;
  let stats = M.bypass_stats manager in
  Printf.printf "\nbypass cache: %d hits, %d misses (%d tokens live)\n"
    stats.Allocator.Bypass.hits stats.Allocator.Bypass.misses
    stats.Allocator.Bypass.tokens;
  (* Tear the session down; tokens die with the instances. *)
  let released = M.release_app manager ~app_id:"audio-app" in
  Printf.printf "released %d tasks at session end\n" released;
  call "equalizer" equalizer_request;
  print_endline "(fresh retrieval after release, as expected)"
