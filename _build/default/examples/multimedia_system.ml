(* Full-system run: the Fig. 1 stack under its four standard
   applications (MP3 player, video scaler, automotive ECU, cruise
   control) for one simulated second, plus a platform comparison.

   Run with: dune exec examples/multimedia_system.exe *)

module S = Desim.Simulate

let () =
  let spec = { (S.default_spec ()) with S.duration_us = 1_000_000.0 } in
  print_endline "reference platform (2 FPGAs + DSP + GPP + ASIC):";
  let report = S.run spec in
  Format.printf "%a@.@." S.pp_report report;

  (* The same workload on a software-only platform: every request falls
     back to GPP variants, similarity degrades. *)
  let gpp_only =
    match
      Allocator.Device.make ~device_id:"gpp0" ~target:Qos_core.Target.Gpp
        ~capacity:8 ()
    with
    | Ok d -> [ d ]
    | Error e -> failwith e
  in
  print_endline "software-only platform (one GPP):";
  let degraded = S.run { spec with S.devices = gpp_only } in
  Format.printf "%a@.@." S.pp_report degraded;

  Printf.printf
    "quality comparison: mean granted similarity %.3f (reconfigurable) vs %.3f \
     (software only); grant rate %.0f%% vs %.0f%%\n"
    (S.mean_similarity report.S.totals)
    (S.mean_similarity degraded.S.totals)
    (100.0 *. S.grant_rate report.S.totals)
    (100.0 *. S.grant_rate degraded.S.totals)
