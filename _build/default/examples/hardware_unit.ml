(* Drive the cycle-accurate hardware retrieval unit: FSM trace over the
   paper example, cycle statistics for the architecture variants, and
   the software-baseline comparison (Sec. 4.2).

   Run with: dune exec examples/hardware_unit.exe *)

open Qos_core
module M = Rtlsim.Machine

let () =
  let cb = Scenario_audio.casebase in
  let request = Scenario_audio.request in

  print_endline "FSM trace (paper example, word-serial configuration):";
  (match M.retrieve ~trace:true cb request with
  | Error e -> print_endline (M.error_to_string e)
  | Ok o ->
      List.iter (fun line -> print_endline ("  " ^ line)) o.M.trace;
      Printf.printf "=> impl %d, S = %.4f\n\n" o.M.best_impl_id
        (Fxp.Q15.to_float o.M.best_score));

  print_endline "architecture variants on a 15x10x10 case base:";
  let big = Workload.Generator.sized_casebase ~seed:61 ~types:15 ~impls:10 ~attrs:10 in
  let req = Workload.Generator.sized_request ~seed:62 big in
  let run label config =
    match M.retrieve ~config big req with
    | Error e -> Printf.printf "  %-28s %s\n" label (M.error_to_string e)
    | Ok o ->
        Printf.printf "  %-28s %6d cycles (impl %d)\n" label
          o.M.stats.M.cycles o.M.best_impl_id
  in
  run "word-serial (paper)" M.paper_config;
  run "compacted blocks (Sec. 5)" { M.paper_config with M.compacted = true };
  run "restart scans (no Sec. 4.1)" { M.paper_config with M.resume_scan = false };
  run "iterative divider" { M.paper_config with M.use_divider = true };

  print_endline "\nsoftware baseline (MicroBlaze-like soft core):";
  (match Mblaze.Retrieval_prog.run big req with
  | Error e -> print_endline e
  | Ok r ->
      Format.printf "  %a@." Mblaze.Retrieval_prog.pp_result r;
      (match M.retrieve big req with
      | Ok o ->
          Printf.printf "  speedup at equal clock: %.2fx\n"
            (float_of_int r.Mblaze.Retrieval_prog.stats.Mblaze.Cpu.cycles
            /. float_of_int o.M.stats.M.cycles)
      | Error _ -> ()));

  print_endline "\nresource estimate (Table 2 model):";
  let e = Resource.estimate Rtlsim.Datapath.retrieval_unit in
  Format.printf "  %a@." Resource.pp_estimate e
