(* Self-learning loop: the Sec. 5 outlook in action.

   The system starts with design-time attribute estimates, observes
   real behaviour at run time, revises the case base (CBR revise),
   retains a newly profiled variant (CBR retain), and recompiles the
   hardware image — showing that retrieval decisions track the
   learned reality.

   Run with: dune exec examples/self_learning.exe *)

open Qos_core

let get = function Ok x -> x | Error e -> failwith e

let show_best label cb request =
  match Engine_float.best cb request with
  | Ok r ->
      Printf.printf "%-28s best = impl %d on %-4s (S = %.4f)\n" label
        r.Retrieval.impl.Impl.id
        (Target.to_string r.Retrieval.impl.Impl.target)
        r.Retrieval.score
  | Error e -> Printf.printf "%-28s %s\n" label (Retrieval.error_to_string e)

let () =
  let cb = Scenario_audio.casebase in
  let request = Scenario_audio.request in
  show_best "design-time estimates:" cb request;

  (* 1. Revise: profiling shows the DSP variant only sustains 30 kS/s
     under load, not the estimated 44.  Smooth the stored value toward
     the measurements over three observation rounds. *)
  let observed =
    List.fold_left
      (fun cb measured ->
        get
          (Learning.observe cb ~type_id:1 ~impl_id:2
             ~measurements:[ (4, measured) ] ~smoothing:0.5))
      cb [ 32; 30; 30 ]
  in
  let dsp = Option.get (Casebase.find_impl observed ~type_id:1 ~impl_id:2) in
  Printf.printf
    "\nafter three rate observations (32, 30, 30 kS/s), the DSP case\n\
     stores %d kS/s instead of 44.\n\n"
    (Option.get (Impl.find_attr dsp 4));
  show_best "after revise:" observed request;

  (* 2. Retain: a newly profiled FPGA bitstream variant arrives whose
     measured attributes match the request well.  Widen the schema if
     needed, then retain it as a new case. *)
  let new_variant =
    get (Impl.make ~id:4 ~target:Target.Fpga [ (1, 16); (3, 1); (4, 42) ])
  in
  let widened = get (Learning.widen_schema_for observed new_variant) in
  let retained = get (Learning.retain_variant widened ~type_id:1 new_variant) in
  Printf.printf "\nretained a profiled FPGA variant (16 bit, stereo, 42 kS/s)\n";
  show_best "after retain:" retained request;

  (* 3. The learned case base recompiles to a hardware image; the unit
     picks the learned variant. *)
  (match Rtlsim.Machine.retrieve retained request with
  | Ok o ->
      Printf.printf
        "\nrecompiled RAM image: hardware unit picks impl %d (S = %.4f) in %d cycles\n"
        o.Rtlsim.Machine.best_impl_id
        (Fxp.Q15.to_float o.Rtlsim.Machine.best_score)
        o.Rtlsim.Machine.stats.Rtlsim.Machine.cycles
  | Error e -> print_endline (Rtlsim.Machine.error_to_string e));

  (* 4. Forget the stale GPP variant whose configuration data left the
     repository. *)
  let pruned = get (Learning.forget_variant retained ~type_id:1 ~impl_id:3) in
  Printf.printf "\nafter forgetting the GPP variant: %d cases remain for type 1\n"
    (Ftype.impl_count (Option.get (Casebase.find_type pruned 1)))
