(* qosalloc: command-line front end for the QoS-based function
   allocation library.

   Subcommands:
     retrieve   run CBR retrieval over a case base for a request
     layout     show the Fig. 4/5 RAM images and memory accounting
     trace      run the hardware unit model with a cycle trace
     resources  print the Table 2 resource estimate
     simulate   run the full-system discrete-event simulation
     faults     run a fault-injection campaign with recovery
     demo       emit the built-in paper example as text-format files *)

open Cmdliner
open Qos_core

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error m -> Error m

let load_casebase = function
  | None -> Ok Scenario_audio.casebase
  | Some path ->
      Result.bind (read_file path) (fun text ->
          Result.map_error
            (fun e -> Format.asprintf "%s: %a" path Textfmt.pp_parse_error e)
            (Textfmt.parse_casebase text))

let load_request = function
  | None -> Ok Scenario_audio.request
  | Some path ->
      Result.bind (read_file path) (fun text ->
          Result.map_error
            (fun e -> Format.asprintf "%s: %a" path Textfmt.pp_parse_error e)
            (Textfmt.parse_request text))

let or_die = function
  | Ok v -> v
  | Error m ->
      prerr_endline ("qosalloc: " ^ m);
      exit 1

(* --- common args ------------------------------------------------------- *)

let casebase_arg =
  let doc =
    "Case base in the qosalloc text format.  Defaults to the built-in \
     paper example (Fig. 3 audio case base)."
  in
  Arg.(value & opt (some file) None & info [ "c"; "casebase" ] ~docv:"FILE" ~doc)

let request_arg =
  let doc =
    "Request in the qosalloc text format.  Defaults to the built-in paper \
     request (bitwidth 16, stereo, 40 kS/s)."
  in
  Arg.(value & opt (some file) None & info [ "r"; "request" ] ~docv:"FILE" ~doc)

(* --- observability ------------------------------------------------------- *)

let metrics_arg =
  let doc =
    "Write the metrics registry to $(docv) after the run: Prometheus text \
     exposition, or canonical JSON when the file name ends in $(b,.json).  \
     All timestamps are sim-time, so the file is byte-identical across \
     runs with the same seed and flags."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Write the span trace as Chrome trace-event JSON to $(docv) \
     (loadable in Perfetto or chrome://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let events_out_arg =
  let doc =
    "Write the structured event log (the flight recorder) as NDJSON to \
     $(docv): one JSON object per event — request life cycle, node and \
     breaker transitions, rejoins, sheds, SLO alerts — stamped with \
     sim-time, terminated by an $(b,eventlog-summary) line.  \
     Byte-identical for a fixed seed at any $(b,--jobs)."
  in
  Arg.(value & opt (some string) None & info [ "events-out" ] ~docv:"FILE" ~doc)

(* Metrics alone run with the no-op tracer and event sinks, so spans
   and events cost one branch unless --trace-out / --events-out asked
   for them. *)
let make_obs ~metrics ~trace_out ~events_out =
  match (metrics, trace_out, events_out) with
  | None, None, None -> None
  | _ ->
      let tracer =
        match trace_out with
        | None -> Obs.Tracer.noop ()
        | Some _ -> Obs.Tracer.collecting ()
      in
      let events =
        match events_out with
        | None -> Obs.Events.noop ()
        | Some _ -> Obs.Events.recording ()
      in
      Some (Obs.Ctx.create ~tracer ~events ())

let write_file path contents =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc contents)

let emit_obs obs ~metrics ~trace_out ~events_out =
  match obs with
  | None -> ()
  | Some ctx ->
      (match metrics with
      | None -> ()
      | Some path ->
          write_file path
            (if Filename.check_suffix path ".json" then
               Obs.Metrics.to_json ctx.Obs.Ctx.registry
             else Obs.Metrics.to_prometheus ctx.Obs.Ctx.registry));
      (match trace_out with
      | None -> ()
      | Some path -> write_file path (Obs.Tracer.to_json ctx.Obs.Ctx.tracer));
      (match events_out with
      | None -> ()
      | Some path -> write_file path (Obs.Events.to_ndjson ctx.Obs.Ctx.events))

(* --- retrieve ----------------------------------------------------------- *)

(* Float and fixed keep their pretty ranked output and sw its program
   result; every other engine goes through the registry uniformly. *)
type engine = Float_engine | Fixed_engine | Sw_engine | Named_engine of string

let engine_conv =
  let parse = function
    | "float" -> Ok Float_engine
    | "fixed" -> Ok Fixed_engine
    | "sw" -> Ok Sw_engine
    | name -> (
        match Engines.of_name name with
        | Ok _ ->
            Ok (Named_engine (if name = "rtl" then "rtlsim" else name))
        | Error _ ->
            Error
              (`Msg
                 (Printf.sprintf "unknown engine %S (expected %s)" name
                    (String.concat "|" (Engines.names @ [ "sw" ])))))
  in
  let print ppf e =
    Format.pp_print_string ppf
      (match e with
      | Float_engine -> "float"
      | Fixed_engine -> "fixed"
      | Sw_engine -> "sw"
      | Named_engine name -> name)
  in
  Arg.conv (parse, print)

let engine_arg =
  let doc =
    "Engine: $(b,float) (reference), $(b,fixed) (Q15 bit-accurate), \
     $(b,rtlsim) (cycle-accurate hardware unit; alias $(b,rtl)), \
     $(b,netlist) (elaborated gate-level IR simulation), $(b,native) \
     (IR-compiled native kernels), $(b,sw) (soft-core routine)."
  in
  Arg.(value & opt engine_conv Float_engine & info [ "e"; "engine" ] ~doc)

let make_engine name cb =
  or_die (Result.bind (Engines.of_name name) (fun factory -> factory cb))

(* The factory-selecting --engine axis for simulate/faults/profile:
   carries the canonical registry name. *)
let factory_conv =
  let parse name =
    match Engines.of_name name with
    | Ok _ -> Ok (if name = "rtl" then "rtlsim" else name)
    | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, Format.pp_print_string)

let n_arg =
  let doc = "Report the $(docv) most similar variants (Sec. 5 extension)." in
  Arg.(value & opt int 1 & info [ "n" ] ~docv:"N" ~doc)

let threshold_arg =
  let doc = "Reject variants below this global similarity (Sec. 3)." in
  Arg.(value & opt (some float) None & info [ "t"; "threshold" ] ~docv:"S" ~doc)

let print_float_ranked threshold ranked =
  let kept =
    match threshold with
    | None -> ranked
    | Some t -> List.filter (fun r -> r.Retrieval.score >= t) ranked
  in
  if kept = [] then print_endline "no variant passes the threshold"
  else
    List.iteri
      (fun i (r : Engine_float.ranked) ->
        Printf.printf "%d. impl %d on %s: S = %.4f\n" (i + 1)
          r.Retrieval.impl.Impl.id
          (Target.to_string r.Retrieval.impl.Impl.target)
          r.Retrieval.score)
      kept

let retrieve_cmd =
  let run casebase request engine n threshold =
    let cb = or_die (load_casebase casebase) in
    let req = or_die (load_request request) in
    match engine with
    | Float_engine ->
        let ranked =
          or_die
            (Result.map_error Retrieval.error_to_string
               (Engine_float.n_best ~n cb req))
        in
        print_float_ranked threshold ranked
    | Fixed_engine ->
        let ranked =
          or_die
            (Result.map_error Retrieval.error_to_string
               (Engine_fixed.n_best ~n cb req))
        in
        List.iteri
          (fun i (r : Engine_fixed.ranked) ->
            Printf.printf "%d. impl %d on %s: S = %.4f (raw %d)\n" (i + 1)
              r.Retrieval.impl.Impl.id
              (Target.to_string r.Retrieval.impl.Impl.target)
              (Fxp.Q15.to_float r.Retrieval.score)
              (Fxp.Q15.to_raw r.Retrieval.score))
          ranked
    | Named_engine name -> (
        let eng = make_engine name cb in
        let d =
          or_die
            (Result.map_error Engine.error_to_string (eng.Engine.retrieve req))
        in
        Printf.printf "best: impl %d, S = %.4f (raw %d)\n" d.Engine.impl_id
          (Fxp.Q15.to_float d.Engine.score)
          (Fxp.Q15.to_raw d.Engine.score);
        (match d.Engine.cycles with
        | Some c -> Printf.printf "cycles=%d\n" c
        | None -> ());
        match Option.map (fun f -> f req) eng.Engine.phase_cycles with
        | Some (Ok phases) ->
            print_string "phases:";
            List.iter (fun (n, c) -> Printf.printf " %s=%d" n c) phases;
            print_newline ()
        | Some (Error _) | None -> ())
    | Sw_engine ->
        let r = or_die (Mblaze.Retrieval_prog.run cb req) in
        Format.printf "%a@." Mblaze.Retrieval_prog.pp_result r
  in
  let doc = "run CBR retrieval for a QoS-constrained function request" in
  Cmd.v
    (Cmd.info "retrieve" ~doc)
    Term.(const run $ casebase_arg $ request_arg $ engine_arg $ n_arg
          $ threshold_arg)

(* --- layout -------------------------------------------------------------- *)

let dump_arg =
  let doc = "Also hex-dump the RAM images." in
  Arg.(value & flag & info [ "d"; "dump" ] ~doc)

let hexdump name words =
  Printf.printf "%s (%d words):\n" name (Array.length words);
  Array.iteri
    (fun i w ->
      if i mod 8 = 0 then Printf.printf "%s%04x:" (if i > 0 then "\n" else "") i;
      Printf.printf " %04x" w)
    words;
  print_newline ()

let layout_cmd =
  let run casebase request dump =
    let cb = or_die (load_casebase casebase) in
    let req = or_die (load_request request) in
    let acc = or_die (Memlayout.account cb req) in
    Format.printf "%a@." Memlayout.pp_accounting acc;
    let image = or_die (Memlayout.build_system cb req) in
    Printf.printf "CB-MEM: %d words (tree @%d, supplemental @%d)\n"
      (Array.length image.Memlayout.cb_mem)
      image.Memlayout.tree_base image.Memlayout.supplemental_base;
    Printf.printf "Req-MEM: %d words\n" (Array.length image.Memlayout.req_mem);
    if dump then begin
      hexdump "CB-MEM" image.Memlayout.cb_mem;
      hexdump "Req-MEM" image.Memlayout.req_mem
    end
  in
  let doc = "compile the Fig. 4/5 RAM images and show memory accounting" in
  Cmd.v (Cmd.info "layout" ~doc)
    Term.(const run $ casebase_arg $ request_arg $ dump_arg)

(* --- trace --------------------------------------------------------------- *)

(* One retrieval's stats rendered into a registry + trace: the total
   and per-phase cycle counters, and a single "retrieval" duration
   event at the paper's 75 MHz clock. *)
let observe_retrieval ctx (o : Rtlsim.Machine.outcome) =
  let stats = o.Rtlsim.Machine.stats in
  let reg = ctx.Obs.Ctx.registry in
  let total =
    Obs.Metrics.counter reg ~help:"Retrieval-unit cycles, total."
      "qosalloc_retrieval_cycles_total"
  in
  Obs.Metrics.inc_by total stats.Rtlsim.Machine.cycles;
  List.iter
    (fun p ->
      let c =
        Obs.Metrics.counter reg ~help:"Retrieval-unit cycles by phase."
          ~labels:[ ("phase", Rtlsim.Machine.phase_name p) ]
          "qosalloc_retrieval_phase_cycles_total"
      in
      Obs.Metrics.inc_by c
        (Rtlsim.Machine.phase_cycles_get p stats.Rtlsim.Machine.phases))
    Rtlsim.Machine.all_phases;
  let clock_mhz = 75.0 in
  Obs.Tracer.complete ctx.Obs.Ctx.tracer ~ts:0.0
    ~dur:(float_of_int stats.Rtlsim.Machine.cycles /. clock_mhz)
    ~args:
      [
        ("cycles", string_of_int stats.Rtlsim.Machine.cycles);
        ("best_impl", string_of_int o.Rtlsim.Machine.best_impl_id);
      ]
    "retrieval"

let trace_cmd =
  let run casebase request compacted restart divider vcd metrics trace_out =
    let cb = or_die (load_casebase casebase) in
    let req = or_die (load_request request) in
    let config =
      {
        Rtlsim.Machine.resume_scan = not restart;
        compacted;
        use_divider = divider;
        overlap_compute = false;
        registered_bram = false;
      }
    in
    let o =
      or_die
        (Rtlsim.Engine.retrieve_traced ~config ~trace:true
           ~waveform:(vcd <> None) cb req)
    in
    List.iter print_endline o.Rtlsim.Machine.trace;
    Printf.printf "best: impl %d, S = %.4f\n" o.Rtlsim.Machine.best_impl_id
      (Fxp.Q15.to_float o.Rtlsim.Machine.best_score);
    Format.printf "%a@." Rtlsim.Machine.pp_stats o.Rtlsim.Machine.stats;
    (match make_obs ~metrics ~trace_out ~events_out:None with
    | None -> ()
    | Some ctx as obs ->
        observe_retrieval ctx o;
        emit_obs obs ~metrics ~trace_out ~events_out:None);
    match vcd with
    | None -> ()
    | Some path ->
        let text =
          or_die
            (Rtlsim.Vcd.render ~signals:Rtlsim.Machine.waveform_signals
               o.Rtlsim.Machine.waveform)
        in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc text);
        Printf.printf "waveform: %d changes -> %s\n"
          (List.length o.Rtlsim.Machine.waveform)
          path
  in
  let compacted =
    Arg.(value & flag & info [ "compacted" ] ~doc:"Compacted block fetches.")
  in
  let restart =
    Arg.(value & flag & info [ "restart-scan" ] ~doc:"Disable resume scanning.")
  in
  let divider =
    Arg.(value & flag & info [ "divider" ] ~doc:"Use an iterative divider.")
  in
  let vcd =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Also dump a VCD waveform.")
  in
  let doc = "run the hardware retrieval unit with a cycle trace" in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ casebase_arg $ request_arg $ compacted $ restart $ divider
      $ vcd $ metrics_arg $ trace_out_arg)

(* --- resources ------------------------------------------------------------ *)

let resources_cmd =
  let run compacted =
    let datapath =
      if compacted then Rtlsim.Datapath.compacted_retrieval_unit
      else Rtlsim.Datapath.retrieval_unit
    in
    let e = Resource.estimate datapath in
    Format.printf "%a@." Resource.pp_estimate e;
    Format.printf "on %s: %a@." Resource.xc2v3000.Resource.device_name
      Resource.pp_utilization
      (Resource.utilization Resource.xc2v3000 e);
    Printf.printf "paper (Table 2): %d slices, %d BRAM, %d MULT18X18, %.0f MHz\n"
      Resource.table2.Resource.paper_slices Resource.table2.Resource.paper_brams
      Resource.table2.Resource.paper_mults
      Resource.table2.Resource.paper_clock_mhz
  in
  let compacted =
    Arg.(value & flag & info [ "compacted" ] ~doc:"Estimate the compacted variant.")
  in
  let doc = "estimate FPGA resources for the retrieval unit (Table 2)" in
  Cmd.v (Cmd.info "resources" ~doc) Term.(const run $ compacted)

(* --- simulate --------------------------------------------------------------- *)

(* Deterministic replay stream for the sharded front-end: the same
   application templates the discrete-event simulation draws from,
   cycled round-robin and jittered from the spec seed. *)
let par_request_stream (spec : Desim.Simulate.spec) ~count =
  let rng = Workload.Prng.create ~seed:(spec.Desim.Simulate.seed + 1) in
  let apps = Array.of_list spec.Desim.Simulate.apps in
  let napps = Array.length apps in
  List.init count (fun i ->
      let profile = apps.(i mod napps) in
      let templates = profile.Desim.Apps.templates in
      let template = List.nth templates (i / napps mod List.length templates) in
      {
        Parallel.Frontend.app_id = profile.Desim.Apps.app_id;
        request = Desim.Apps.instantiate rng template;
      })

let run_par_section ?obs ?engine (spec : Desim.Simulate.spec) ~jobs ~batch
    ~par_out =
  let config =
    { Parallel.Frontend.default_config with Parallel.Frontend.jobs; batch }
  in
  let fe =
    or_die
      (Parallel.Frontend.create ?obs ?engine ~config
         spec.Desim.Simulate.casebase)
  in
  let report = Parallel.Frontend.run fe (par_request_stream spec ~count:256) in
  Format.printf "@[<v>=== PAR (sharded retrieval front-end) ===@,%a@]@."
    Parallel.Frontend.pp_perf report;
  Format.printf "PAR results digest: %s@."
    (Parallel.Frontend.results_digest report);
  match par_out with
  | None -> ()
  | Some path ->
      write_file path (Parallel.Frontend.results_to_string report);
      Format.printf "PAR results -> %s@." path

let simulate_cmd =
  let run duration_us seed trace_csv metrics trace_out jobs batch par_out
      engine =
    let retrieval_engine = Option.map (fun n -> or_die (Engines.of_name n)) engine in
    let spec =
      {
        (Desim.Simulate.default_spec ()) with
        Desim.Simulate.duration_us;
        seed;
        collect_trace = trace_csv <> None;
        retrieval_engine;
      }
    in
    let obs = make_obs ~metrics ~trace_out ~events_out:None in
    let report = Desim.Simulate.run ?obs spec in
    (match (jobs, batch, par_out) with
    | None, None, None -> ()
    | _ ->
        run_par_section ?obs ?engine:retrieval_engine spec
          ~jobs:(Option.value jobs ~default:1)
          ~batch:(Option.value batch ~default:16)
          ~par_out);
    emit_obs obs ~metrics ~trace_out ~events_out:None;
    Format.printf "%a@." Desim.Simulate.pp_report report;
    match trace_csv with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc
              (Desim.Tracefile.to_csv report.Desim.Simulate.trace));
        Format.printf "trace: %d rows -> %s@."
          (List.length report.Desim.Simulate.trace)
          path;
        Format.printf "%a@." Desim.Tracefile.pp_analysis
          (Desim.Tracefile.analyze report.Desim.Simulate.trace)
  in
  let duration =
    Arg.(
      value
      & opt float 200_000.0
      & info [ "duration-us" ] ~docv:"US" ~doc:"Simulated time in microseconds.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let trace_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-csv" ] ~docv:"FILE"
          ~doc:"Write a per-request CSV trace and print its analysis.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Also run the sharded retrieval front-end with $(docv) worker \
             domains over a deterministic replay of the application \
             requests.  Results are byte-identical for any $(docv).")
  in
  let batch =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"N"
          ~doc:"Front-end batch size (requests per queue element).")
  in
  let par_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "par-out" ] ~docv:"FILE"
          ~doc:
            "Write the front-end's jobs-invariant result report to $(docv) \
             (byte-identical across --jobs settings).")
  in
  let engine =
    Arg.(
      value
      & opt (some factory_conv) None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Retrieval engine backing the manager's latency model and the \
             sharded front-end: $(b,float), $(b,fixed), $(b,rtlsim) (the \
             default), $(b,netlist) or $(b,native).  Bit-accurate engines \
             produce byte-identical front-end results; only modeled cycle \
             counts differ.")
  in
  let doc = "simulate the Fig. 1 multi-device system under load" in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ duration $ seed $ trace_csv $ metrics_arg $ trace_out_arg
      $ jobs $ batch $ par_out $ engine)

(* --- faults ---------------------------------------------------------------- *)

(* "DEVICE@TIME" (permanent) or "DEVICE@TIME+DURATION" (transient). *)
let parse_device_fault s =
  match String.index_opt s '@' with
  | None -> Error (`Msg (Printf.sprintf "expected DEVICE@TIME[+DUR], got %S" s))
  | Some at -> (
      let device = String.sub s 0 at in
      let rest = String.sub s (at + 1) (String.length s - at - 1) in
      let time_s, dur_s =
        match String.index_opt rest '+' with
        | None -> (rest, None)
        | Some plus ->
            ( String.sub rest 0 plus,
              Some (String.sub rest (plus + 1) (String.length rest - plus - 1))
            )
      in
      match (float_of_string_opt time_s, Option.map float_of_string_opt dur_s) with
      | None, _ | _, Some None ->
          Error (`Msg (Printf.sprintf "bad time in device fault %S" s))
      | Some time, None ->
          Ok
            {
              Faults.Campaign.df_device_id = device;
              df_at_us = time;
              df_kind = `Permanent;
            }
      | Some time, Some (Some dur) ->
          Ok
            {
              Faults.Campaign.df_device_id = device;
              df_at_us = time;
              df_kind = `Transient dur;
            })

let faults_cmd =
  let run duration_us seed seu_mean scrub_period reconfig_prob flash_prob
      deadline max_retries backoff_us backoff_factor backoff_cap_us
      backoff_jitter device_faults format metrics trace_out events_out engine =
    let base =
      {
        (Desim.Simulate.default_spec ()) with
        Desim.Simulate.duration_us;
        seed;
        retrieval_engine =
          Option.map (fun n -> or_die (Engines.of_name n)) engine;
      }
    in
    List.iter
      (fun df ->
        let id = df.Faults.Campaign.df_device_id in
        if
          not
            (List.exists
               (fun (d : Allocator.Device.t) ->
                 String.equal d.Allocator.Device.device_id id)
               base.Desim.Simulate.devices)
        then or_die (Error (Printf.sprintf "unknown device %S in --fail" id)))
      device_faults;
    let spec =
      {
        Faults.Campaign.base;
        seu_mean_interval_us = seu_mean;
        scrub_period_us = scrub_period;
        reconfig_fail_prob = reconfig_prob;
        flash_error_prob = flash_prob;
        load_deadline_us = deadline;
        retry =
          {
            Faults.Campaign.max_retries;
            backoff_base_us = backoff_us;
            backoff_factor;
            backoff_cap_us;
            backoff_jitter;
          };
        device_faults;
      }
    in
    let obs = make_obs ~metrics ~trace_out ~events_out in
    let report = Faults.Campaign.run ?obs spec in
    emit_obs obs ~metrics ~trace_out ~events_out;
    (match format with
    | `Json -> print_string (Faults.Campaign.to_json report)
    | `Text -> Format.printf "@[<v>%a@]@." Faults.Campaign.pp report);
    exit (Faults.Campaign.exit_code report)
  in
  let duration =
    Arg.(
      value
      & opt float 200_000.0
      & info [ "duration-us" ] ~docv:"US" ~doc:"Simulated time in microseconds.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let seu_mean =
    Arg.(
      value
      & opt (some float) None
      & info [ "seu-mean-us" ] ~docv:"US"
          ~doc:"Mean interval of the Poisson SEU process (off by default).")
  in
  let scrub_period =
    Arg.(
      value
      & opt (some float) None
      & info [ "scrub-period-us" ] ~docv:"US"
          ~doc:
            "Scrubbing period; omitting it disables scrubbing and the \
             retrieval readback check.")
  in
  let reconfig_prob =
    Arg.(
      value & opt float 0.0
      & info [ "reconfig-fail-prob" ] ~docv:"P"
          ~doc:"Per-attempt bitstream-load failure probability.")
  in
  let flash_prob =
    Arg.(
      value & opt float 0.0
      & info [ "flash-error-prob" ] ~docv:"P"
          ~doc:"Per-attempt flash-repository read-error probability.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "load-deadline-us" ] ~docv:"US"
          ~doc:"First-attempt loads slower than this miss their deadline.")
  in
  let max_retries =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~docv:"N" ~doc:"Retry budget per failed load.")
  in
  let backoff_us =
    Arg.(
      value & opt float 200.0
      & info [ "backoff-us" ] ~docv:"US" ~doc:"Base retry backoff.")
  in
  let backoff_factor =
    Arg.(
      value & opt float 2.0
      & info [ "backoff-factor" ] ~docv:"F"
          ~doc:"Exponential backoff multiplier.")
  in
  let backoff_cap_us =
    Arg.(
      value & opt float 5_000.0
      & info [ "backoff-cap-us" ] ~docv:"US"
          ~doc:"Ceiling on a single retry backoff before jitter.")
  in
  let backoff_jitter =
    Arg.(
      value & opt float 0.1
      & info [ "backoff-jitter" ] ~docv:"J"
          ~doc:
            "Relative backoff jitter half-width in [0,1); 0 disables \
             jitter and consumes no randomness.")
  in
  let fault_conv =
    Arg.conv
      ( parse_device_fault,
        fun ppf df ->
          Format.fprintf ppf "%s@%.0f" df.Faults.Campaign.df_device_id
            df.Faults.Campaign.df_at_us )
  in
  let device_faults =
    Arg.(
      value
      & opt_all fault_conv []
      & info [ "fail" ] ~docv:"DEV@US[+DUR]"
          ~doc:
            "Schedule a device failure: $(b,dsp0@20000) fails dsp0 \
             permanently at t=20000us; $(b,dsp0@20000+15000) restores it \
             15000us later.  Repeatable.")
  in
  let format_arg =
    let fmt_conv =
      Arg.conv
        ( (function
          | "text" -> Ok `Text
          | "json" -> Ok `Json
          | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))),
          fun ppf f ->
            Format.pp_print_string ppf
              (match f with `Text -> "text" | `Json -> "json") )
    in
    Arg.(
      value & opt fmt_conv `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let doc = "run a deterministic fault-injection campaign with recovery" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Replays the $(b,simulate) workload while injecting faults from a \
         seed-driven schedule: SEU bit flips into the live RAM image, \
         bitstream-load and flash-read failures with bounded \
         exponential-backoff retry, and transient or permanent device \
         failures whose evicted tasks are relocated to the next-best \
         variant on a healthy device (the similarity delta is the \
         recorded QoS degradation).";
      `P
        "Exit status: 0 when the campaign stayed clean, 1 when faults \
         occurred but every one was detected and recovered, 2 on \
         unrecovered loss (a lost allocation, a task nothing could \
         re-host, or a retrieval that silently consumed a corrupted \
         image).";
    ]
  in
  let engine =
    Arg.(
      value
      & opt (some factory_conv) None
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Retrieval engine backing the manager's latency model during \
             the campaign (default $(b,rtlsim)).")
  in
  Cmd.v (Cmd.info "faults" ~doc ~man)
    Term.(
      const run $ duration $ seed $ seu_mean $ scrub_period $ reconfig_prob
      $ flash_prob $ deadline $ max_retries $ backoff_us $ backoff_factor
      $ backoff_cap_us $ backoff_jitter $ device_faults $ format_arg
      $ metrics_arg $ trace_out_arg $ events_out_arg $ engine)

(* --- serve ----------------------------------------------------------------- *)

let serve_cmd =
  let run duration_us seed nodes replication fault_domains jobs engine_name
      kill_frac bounce_mean bounce_down retries backoff_us backoff_factor
      backoff_cap_us backoff_jitter min_availability slo steal steal_threshold
      stream requests load_scale slo_out out metrics trace_out events_out =
    let engine = or_die (Engines.of_name engine_name) in
    let d = Cluster.Serve.default_spec () in
    let spec =
      {
        d with
        Cluster.Serve.duration_us;
        seed;
        nodes;
        replication;
        fault_domains;
        jobs;
        engine_name;
        engine;
        outage =
          {
            Faults.Outages.permanent_frac = kill_frac;
            permanent_window = (0.2, 0.7);
            transient_mean_us = bounce_mean;
            transient_down_us = bounce_down;
          };
        backoff =
          {
            Faults.Backoff.base_us = backoff_us;
            factor = backoff_factor;
            cap_us = backoff_cap_us;
            jitter = backoff_jitter;
          };
        max_retries = retries;
        min_availability;
        slo =
          Option.map
            (fun (availability, latency_us) ->
              Cluster.Serve.default_slo ~availability ~latency_us)
            slo;
        steal =
          {
            Cluster.Steal.default with
            Cluster.Steal.enabled = steal;
            threshold = steal_threshold;
            seed;
          };
        source =
          (if stream then Cluster.Serve.Stream else Cluster.Serve.Pregenerated);
        max_requests = requests;
        load_scale;
      }
    in
    let obs = make_obs ~metrics ~trace_out ~events_out in
    let report = or_die (Cluster.Serve.run ?obs spec) in
    emit_obs obs ~metrics ~trace_out ~events_out;
    (match out with
    | None -> ()
    | Some path -> write_file path (Cluster.Serve.results_to_string report));
    (match slo_out with
    | None -> ()
    | Some path ->
        write_file path (Obs.Slo.reports_to_json report.Cluster.Serve.slo));
    Format.printf "@[<v>%a@]@." Cluster.Serve.pp report;
    exit (Cluster.Serve.exit_code ~min_availability report)
  in
  let duration =
    Arg.(
      value
      & opt float 200_000.0
      & info [ "duration-us" ] ~docv:"US" ~doc:"Simulated time in microseconds.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let nodes =
    Arg.(
      value & opt int 6
      & info [ "nodes" ] ~docv:"N" ~doc:"Cluster membership size.")
  in
  let replication =
    Arg.(
      value & opt int 3
      & info [ "replication" ] ~docv:"N"
          ~doc:"Replicas per function type (clamped to the node count).")
  in
  let fault_domains =
    Arg.(
      value & opt int 3
      & info [ "fault-domains" ] ~docv:"N"
          ~doc:
            "Failure-correlation domains; replica walks prefer distinct \
             domains first.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the decision phase.  The end-of-run report \
             is byte-identical at any value.")
  in
  let engine =
    Arg.(
      value
      & opt factory_conv "native"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Per-node retrieval engine (default $(b,native)).")
  in
  let kill_frac =
    Arg.(
      value & opt float 0.0
      & info [ "kill-frac" ] ~docv:"F"
          ~doc:
            "Fraction of nodes killed permanently during the run (seeded \
             victims and times).")
  in
  let bounce_mean =
    Arg.(
      value
      & opt (some float) None
      & info [ "bounce-mean-us" ] ~docv:"US"
          ~doc:
            "Mean interval of per-node transient outages (Poisson); off by \
             default.")
  in
  let bounce_down =
    Arg.(
      value
      & opt (pair ~sep:',' float float) (1_000.0, 5_000.0)
      & info [ "bounce-down-us" ] ~docv:"LO,HI"
          ~doc:"Uniform downtime range of one transient outage.")
  in
  let retries =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:"Backoff rounds before answering degraded.")
  in
  let backoff_us =
    Arg.(
      value & opt float 200.0
      & info [ "backoff-us" ] ~docv:"US" ~doc:"Base retry backoff.")
  in
  let backoff_factor =
    Arg.(
      value & opt float 2.0
      & info [ "backoff-factor" ] ~docv:"F"
          ~doc:"Exponential backoff multiplier.")
  in
  let backoff_cap_us =
    Arg.(
      value & opt float 5_000.0
      & info [ "backoff-cap-us" ] ~docv:"US"
          ~doc:"Ceiling on a single retry backoff before jitter.")
  in
  let backoff_jitter =
    Arg.(
      value & opt float 0.1
      & info [ "backoff-jitter" ] ~docv:"J"
          ~doc:
            "Relative backoff jitter half-width in [0,1); 0 disables jitter \
             and consumes no randomness.")
  in
  let min_availability =
    Arg.(
      value & opt float 0.99
      & info [ "min-availability" ] ~docv:"F"
          ~doc:
            "Full-QoS availability floor below which the run classifies as \
             unrecovered loss (exit 2).")
  in
  let slo =
    Arg.(
      value
      & opt (some (pair ~sep:':' float float)) None
      & info [ "slo" ] ~docv:"AVAIL:LAT_US"
          ~doc:
            "Track two service-level objectives over the run with \
             multi-window burn-rate alerting: an availability objective \
             (a full-QoS answer is a good event) and a latency objective \
             (a response within $(b,LAT_US) microseconds is a good event), \
             both targeting the fraction $(b,AVAIL).  A missed objective \
             classifies the run as unrecovered loss (exit 2).")
  in
  let steal =
    Arg.(
      value & flag
      & info [ "steal" ]
          ~doc:
            "Enable deterministic work stealing: an overloaded node hands \
             the request to the least-loaded eligible node of its replica \
             set, or — when every replica is saturated — to the globally \
             least-loaded node (paying a resync penalty when the victim \
             does not hold the type).  Victim election is seeded, so \
             reports stay byte-identical at any $(b,--jobs).")
  in
  let steal_threshold =
    Arg.(
      value & opt float 0.9
      & info [ "steal-threshold" ] ~docv:"F"
          ~doc:
            "Saturation fraction of a node's slots at which it donates \
             work, and above which it refuses to be a victim.")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "Pull arrivals from the streaming source instead of \
             pregenerating the request array — O(apps) generation memory, \
             byte-identical report.")
  in
  let requests =
    Arg.(
      value
      & opt (some int) None
      & info [ "requests" ] ~docv:"N"
          ~doc:
            "Stop after the first $(docv) arrivals of the merged sequence \
             (identical for either source).")
  in
  let load_scale =
    Arg.(
      value & opt float 1.0
      & info [ "load-scale" ] ~docv:"F"
          ~doc:
            "Divide every application's inter-arrival period by $(docv); \
             values above ~1000 saturate the standard mix.")
  in
  let slo_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo-out" ] ~docv:"FILE"
          ~doc:
            "Write the per-objective SLO reports (attainment, burn alerts, \
             firing time) as canonical JSON to $(docv).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the canonical per-request results report to $(docv) — \
             byte-identical for a fixed seed at any $(b,--jobs).")
  in
  let doc = "serve the workload on a replicated multi-node cluster" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the standard application workload against a cluster of nodes, \
         each hosting a fault-domain-aware replica slice of the case base \
         behind its own retrieval engine.  A seeded outage campaign kills \
         and bounces nodes while requests fail over between replicas, back \
         off with capped jittered retries, and degrade gracefully (a stale \
         decision, never a dropped request) when every replica is down, \
         tripped or saturated.";
      `P
        "Exit status: 0 when every request was answered at full QoS with no \
         outage or recovery activity, 1 when faults or recovery actions \
         (failovers, sheds, retries, steals) occurred but every request was \
         still answered and availability held above the floor, 2 on any \
         failed request, availability below $(b,--min-availability), or a \
         missed $(b,--slo) objective.";
    ]
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ duration $ seed $ nodes $ replication $ fault_domains $ jobs
      $ engine $ kill_frac $ bounce_mean $ bounce_down $ retries $ backoff_us
      $ backoff_factor $ backoff_cap_us $ backoff_jitter $ min_availability
      $ slo $ steal $ steal_threshold $ stream $ requests $ load_scale
      $ slo_out $ out $ metrics_arg $ trace_out_arg $ events_out_arg)

(* --- profile --------------------------------------------------------------- *)

let profile_cmd =
  let run casebase request compacted restart divider format max_cycles engine =
    let cb = or_die (load_casebase casebase) in
    let req = or_die (load_request request) in
    let config =
      {
        Rtlsim.Machine.resume_scan = not restart;
        compacted;
        use_divider = divider;
        overlap_compute = false;
        registered_bram = false;
      }
    in
    let report =
      match engine with
      | "rtlsim" ->
          (* The config toggles only exist on the rtlsim machine. *)
          or_die (Obs.Profile.run ~config cb req)
      | name -> or_die (Obs.Profile.run_engine (make_engine name cb) req)
    in
    (match format with
    | `Json -> print_string (Obs.Profile.report_to_json report)
    | `Text -> Format.printf "@[<v>%a@]@." Obs.Profile.pp_report report);
    match max_cycles with
    | Some budget
      when report.Obs.Profile.breakdown.Obs.Profile.total_cycles > budget ->
        Printf.eprintf "qosalloc: cycle budget exceeded: %d > %d\n"
          report.Obs.Profile.breakdown.Obs.Profile.total_cycles budget;
        exit 1
    | Some _ | None -> ()
  in
  let compacted =
    Arg.(value & flag & info [ "compacted" ] ~doc:"Compacted block fetches.")
  in
  let restart =
    Arg.(value & flag & info [ "restart-scan" ] ~doc:"Disable resume scanning.")
  in
  let divider =
    Arg.(value & flag & info [ "divider" ] ~doc:"Use an iterative divider.")
  in
  let format_arg =
    let fmt_conv =
      Arg.conv
        ( (function
          | "text" -> Ok `Text
          | "json" -> Ok `Json
          | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))),
          fun ppf f ->
            Format.pp_print_string ppf
              (match f with `Text -> "text" | `Json -> "json") )
    in
    Arg.(
      value & opt fmt_conv `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let max_cycles =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-cycles" ] ~docv:"N"
          ~doc:
            "Cycle budget: exit 1 when the full retrieval exceeds $(docv) \
             cycles.")
  in
  let doc = "profile the retrieval unit: per-phase cycles and linearity" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the cycle-accurate retrieval unit over the request and \
         attributes every cycle to one of four phases (tree walk, \
         attribute scan, multiply-accumulate, memory stall), then \
         re-runs it over every prefix of the request's constraints to \
         check the paper's linear-effort claim: each added constraint \
         should cost a near-constant cycle increment.";
      `P
        "Exit status: 0 normally, 1 when $(b,--max-cycles) is given and \
         the full retrieval exceeds the budget.";
    ]
  in
  let engine =
    Arg.(
      value
      & opt factory_conv "rtlsim"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Cycle-reporting engine to profile (default $(b,rtlsim); \
             $(b,netlist) also reports cycles).  Engines without a timing \
             model are rejected.")
  in
  Cmd.v (Cmd.info "profile" ~doc ~man)
    Term.(
      const run $ casebase_arg $ request_arg $ compacted $ restart $ divider
      $ format_arg $ max_cycles $ engine)

(* --- export --------------------------------------------------------------------- *)

let export_cmd =
  let run casebase request out_dir formats =
    let cb = or_die (load_casebase casebase) in
    let req = or_die (load_request request) in
    (try if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755
     with Sys_error m -> or_die (Error m));
    let write filename contents =
      let path = Filename.concat out_dir filename in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc contents);
      Printf.printf "wrote %s
" path
    in
    let files = or_die (Rtlgen.Vhdl.project cb req) in
    List.iter
      (fun (f : Rtlgen.Vhdl.file) -> write f.Rtlgen.Vhdl.filename f.Rtlgen.Vhdl.contents)
      files;
    let image = or_die (Memlayout.build_system cb req) in
    (* emit_system runs the image verifier and refuses rejected images. *)
    List.iter
      (fun format ->
        List.iter
          (fun (filename, contents) -> write filename contents)
          (or_die (Rtlgen.Memfiles.emit_system format image)))
      formats;
    (* The manifest carries what the raw words cannot: the supplemental
       base and the expected retrieval result, for `qosalloc verify`. *)
    let expected =
      or_die
        (Result.map_error Retrieval.error_to_string (Engine_fixed.best cb req))
    in
    write "qos_manifest.txt"
      (Printf.sprintf
         "# qosalloc export manifest\nsupplemental_base %d\nexpected_impl %d\nexpected_score %d\n"
         image.Memlayout.supplemental_base expected.Retrieval.impl.Impl.id
         (Fxp.Q15.to_raw expected.Retrieval.score))
  in
  let out_dir =
    Arg.(
      value & opt string "qos_rtl"
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let format_conv =
    let parse = function
      | "coe" -> Ok Rtlgen.Memfiles.Coe
      | "mif" -> Ok Rtlgen.Memfiles.Mif
      | "hex" -> Ok Rtlgen.Memfiles.Hex
      | s -> Error (`Msg (Printf.sprintf "unknown memory format %S" s))
    in
    let print ppf f = Format.pp_print_string ppf (Rtlgen.Memfiles.extension f) in
    Arg.conv (parse, print)
  in
  let formats =
    Arg.(
      value
      & opt_all format_conv [ Rtlgen.Memfiles.Hex ]
      & info [ "f"; "format" ] ~docv:"FMT"
          ~doc:"Memory-file format(s): $(b,coe), $(b,mif), $(b,hex).")
  in
  let doc = "export the retrieval unit as VHDL plus memory images" in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ casebase_arg $ request_arg $ out_dir $ formats)

(* --- lint ------------------------------------------------------------------------ *)

let lint_cmd =
  let run casebase request format cb_hex req_hex supp_base =
    let diags =
      match (cb_hex, req_hex) with
      | Some cb_file, Some req_file ->
          (* Raw mode: lint bare hex images, however corrupted. *)
          let load_hex path =
            or_die (Rtlgen.Memfiles.parse_hex (or_die (read_file path)))
          in
          let cb_mem = load_hex cb_file in
          let req_mem = load_hex req_file in
          let supplemental_base =
            match supp_base with
            | Some b -> b
            | None ->
                or_die
                  (Error "--supp-base is required with --cb-hex/--req-hex")
          in
          Analysis.Driver.lint_raw ~cb_mem ~req_mem ~supplemental_base
      | None, None ->
          (* Scenario mode: encode the case base + request and run
             every pass family, including the netlist IR passes and
             the generated VHDL.  A scenario that does not encode is a
             lint finding (exit 2), not a CLI failure. *)
          let cb = or_die (load_casebase casebase) in
          let req = or_die (load_request request) in
          let vhdl =
            match Rtlgen.Vhdl.project cb req with
            | Ok files ->
                List.map
                  (fun (f : Rtlgen.Vhdl.file) ->
                    (f.Rtlgen.Vhdl.filename, f.Rtlgen.Vhdl.contents))
                  files
            | Error _ -> []
          in
          Analysis.Driver.lint_scenario ~vhdl cb req
      | _ -> or_die (Error "--cb-hex and --req-hex must be given together")
    in
    (match format with
    | `Json -> print_string (Analysis.Diagnostic.to_json diags)
    | `Text ->
        List.iter
          (fun d -> Format.printf "%a@." Analysis.Diagnostic.pp d)
          diags;
        Printf.printf "lint: %d error(s), %d warning(s)\n"
          (Analysis.Diagnostic.errors diags)
          (Analysis.Diagnostic.warnings diags));
    exit (Analysis.Diagnostic.exit_code diags)
  in
  let format_arg =
    let fmt_conv =
      Arg.conv
        ( (function
          | "text" -> Ok `Text
          | "json" -> Ok `Json
          | s -> Error (`Msg (Printf.sprintf "unknown format %S" s))),
          fun ppf f ->
            Format.pp_print_string ppf
              (match f with `Text -> "text" | `Json -> "json") )
    in
    Arg.(
      value & opt fmt_conv `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,text) or $(b,json).")
  in
  let cb_hex =
    Arg.(
      value
      & opt (some file) None
      & info [ "cb-hex" ] ~docv:"FILE"
          ~doc:"Lint a raw CB-MEM hex image instead of a scenario.")
  in
  let req_hex =
    Arg.(
      value
      & opt (some file) None
      & info [ "req-hex" ] ~docv:"FILE" ~doc:"Raw Req-MEM hex image.")
  in
  let supp_base =
    Arg.(
      value
      & opt (some int) None
      & info [ "supp-base" ] ~docv:"ADDR"
          ~doc:"Supplemental-list base address of the raw CB image.")
  in
  let doc =
    "statically analyse the RAM image, fixed-point datapath, soft-core \
     routines, elaborated netlist and generated VHDL"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the $(b,qosalloc.analysis) passes: the image verifier (list \
         termination, sorted attribute IDs, pointer bounds, reserved words, \
         reciprocal and weight-sum consistency), interval range analysis of \
         the Q15 datapath, CFG/dataflow checks of both MicroBlaze routine \
         styles, six structural passes over the elaborated netlist IR \
         (width, multi-driver, combinational loops, dead logic, BRAM port \
         conflicts, clock domains), and a lint of the generated VHDL.";
      `P
        "Exit status: 0 when clean (Info findings allowed), 1 when any \
         warning was reported, 2 when any error was reported.";
    ]
  in
  Cmd.v (Cmd.info "lint" ~doc ~man)
    Term.(
      const run $ casebase_arg $ request_arg $ format_arg $ cb_hex $ req_hex
      $ supp_base)

(* --- verify ---------------------------------------------------------------------- *)

let parse_manifest text =
  let entries =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then None
        else
          match String.split_on_char ' ' line with
          | [ key; value ] -> (
              match int_of_string_opt value with
              | Some v -> Some (key, v)
              | None -> None)
          | _ -> None)
      (String.split_on_char '\n' text)
  in
  match
    ( List.assoc_opt "supplemental_base" entries,
      List.assoc_opt "expected_impl" entries,
      List.assoc_opt "expected_score" entries )
  with
  | Some base, Some impl, Some score -> Ok (base, impl, score)
  | _ -> Error "manifest is missing supplemental_base/expected_impl/expected_score"

let verify_cmd =
  let run dir =
    let read name = or_die (read_file (Filename.concat dir name)) in
    let cb_mem = or_die (Rtlgen.Memfiles.parse_hex (read "qos_cb_mem.hex")) in
    let req_mem = or_die (Rtlgen.Memfiles.parse_hex (read "qos_req_mem.hex")) in
    let supplemental_base, expected_impl, expected_score =
      or_die (parse_manifest (read "qos_manifest.txt"))
    in
    let image =
      or_die (Memlayout.reconstruct_system ~cb_mem ~req_mem ~supplemental_base)
    in
    match Rtlsim.Engine.run_image image with
    | Error e ->
        prerr_endline ("qosalloc: retrieval failed: " ^ e);
        exit 1
    | Ok d ->
        let got_impl = d.Engine.impl_id in
        let got_score = Fxp.Q15.to_raw d.Engine.score in
        Printf.printf
          "reconstructed image: %d CB words, %d request words\n\
           hardware model: impl %d, raw score %d (%d cycles)\n"
          (Array.length cb_mem) (Array.length req_mem) got_impl got_score
          (Option.value d.Engine.cycles ~default:0);
        if got_impl = expected_impl && got_score = expected_score then
          print_endline "VERIFY: PASS (matches the exported expectations)"
        else begin
          Printf.printf
            "VERIFY: FAIL (manifest expected impl %d, score %d)\n"
            expected_impl expected_score;
          exit 1
        end
  in
  let dir =
    Arg.(
      value & opt string "qos_rtl"
      & info [ "i"; "input" ] ~docv:"DIR" ~doc:"Directory written by export.")
  in
  let doc = "re-import exported hex images and cross-check the retrieval" in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ dir)

(* --- difftest --------------------------------------------------------------------- *)

let difftest_cmd =
  let run trials seed =
    let failures = ref 0 in
    for i = 1 to trials do
      let rng = Workload.Prng.create ~seed:(seed + i) in
      let schema =
        Workload.Generator.schema rng
          { Workload.Generator.attr_count = 6; max_bound = 400 }
      in
      let cb =
        Workload.Generator.casebase rng ~schema
          {
            Workload.Generator.type_count = 3;
            impls_per_type = (1, 7);
            attrs_per_impl = (1, 6);
          }
      in
      let req =
        Workload.Generator.request rng ~schema ~type_id:1
          {
            Workload.Generator.constraints = (1, 6);
            weight_profile = `Random;
            value_slack = 0.15;
          }
      in
      let via name =
        match Engines.of_name name with
        | Error e -> Error (Engine.Engine_failure e)
        | Ok factory -> (
            match factory cb with
            | Error e -> Error (Engine.Engine_failure e)
            | Ok eng -> eng.Engine.retrieve req)
      in
      let fixed = Engine_fixed.best cb req in
      let rtl = via "rtlsim" in
      let native = via "native" in
      let sw = Mblaze.Retrieval_prog.run cb req in
      let agree =
        match (fixed, rtl, native, sw) with
        | Ok f, Ok o, Ok nd, Ok r ->
            f.Retrieval.impl.Impl.id = o.Engine.impl_id
            && o.Engine.impl_id = r.Mblaze.Retrieval_prog.best_impl_id
            && o.Engine.impl_id = nd.Engine.impl_id
            && Fxp.Q15.equal f.Retrieval.score o.Engine.score
            && Fxp.Q15.equal o.Engine.score nd.Engine.score
            && Fxp.Q15.equal f.Retrieval.score
                 r.Mblaze.Retrieval_prog.best_score
            && Engine_fixed.agrees_with_float cb req
        | Error _, Error _, Error _, Ok r ->
            r.Mblaze.Retrieval_prog.status <> Mblaze.Retrieval_prog.Found
        | _ -> false
      in
      if not agree then begin
        incr failures;
        Printf.printf "MISMATCH at seed %d\n" (seed + i)
      end
    done;
    Printf.printf "difftest: %d/%d scenarios agree across all engines\n"
      (trials - !failures) trials;
    if !failures > 0 then exit 1
  in
  let trials =
    Arg.(value & opt int 1000 & info [ "n"; "trials" ] ~docv:"N" ~doc:"Scenario count.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.")
  in
  let doc = "differential-test all retrieval engines on random scenarios" in
  Cmd.v (Cmd.info "difftest" ~doc) Term.(const run $ trials $ seed)

(* --- analyze --------------------------------------------------------------------- *)

let analyze_cmd =
  let run path =
    let text = or_die (read_file path) in
    let rows = or_die (Desim.Tracefile.of_csv text) in
    Format.printf "%a@." Desim.Tracefile.pp_analysis
      (Desim.Tracefile.analyze rows);
    (* Per-app breakdown. *)
    let apps =
      List.sort_uniq String.compare
        (List.map (fun (r : Desim.Tracefile.row) -> r.Desim.Tracefile.app_id) rows)
    in
    List.iter
      (fun app ->
        let mine =
          List.filter
            (fun (r : Desim.Tracefile.row) ->
              String.equal r.Desim.Tracefile.app_id app)
            rows
        in
        let a = Desim.Tracefile.analyze mine in
        Printf.printf "%-14s rows=%d granted=%d bypass=%d refused=%d\n" app
          a.Desim.Tracefile.total a.Desim.Tracefile.granted
          a.Desim.Tracefile.bypassed a.Desim.Tracefile.refused)
      apps
  in
  let path =
    Arg.(
      required
      & opt (some file) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Trace CSV from simulate.")
  in
  let doc = "analyse a per-request trace CSV" in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ path)

(* --- demo ---------------------------------------------------------------------- *)

let demo_cmd =
  let run () =
    print_string (Textfmt.print_casebase Scenario_audio.casebase);
    print_newline ();
    print_string (Textfmt.print_request Scenario_audio.request)
  in
  let doc = "print the built-in paper example in the text format" in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ const ())

(* --- main ------------------------------------------------------------------------ *)

let () =
  let doc = "QoS-based function allocation for reconfigurable systems" in
  let info = Cmd.info "qosalloc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            retrieve_cmd;
            layout_cmd;
            trace_cmd;
            resources_cmd;
            simulate_cmd;
            faults_cmd;
            serve_cmd;
            profile_cmd;
            export_cmd;
            lint_cmd;
            verify_cmd;
            difftest_cmd;
            analyze_cmd;
            demo_cmd;
          ]))
